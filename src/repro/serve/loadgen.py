"""SLO-gated chaos load harness for the coordinator service.

``run_load`` drives a :class:`~repro.serve.service.CoordinatorService` at a
configurable multiple of its nominal capacity (default **4×** — sustained
overload, not a burst) across N sessions split over M tenants, with seeded
chaos injected per session (round-robin over the spec's ``chaos`` kinds:
recoverable worker crashes, pathologically slow workers, intake floods,
seeded latency jitter) and ``restarts`` rolling restarts of session ``s0``
mid-flight.  One extra admission attempt past the tenant quota probes the
rejection path.

After the run drains, the harness audits the books:

* **conservation** — per session, over that session's own registry:
  ``submitted == completed + shed + rejected + withdrawn`` per vertex and
  kind (:func:`repro.fuzz.oracle.conservation_violations`);
* **exactly-once** — on flood-free sessions every submit that returned
  ``"ok"`` appears exactly once in ``delivered + dead_letters`` — across
  crashes, restarts, and generation swaps (flooded sessions duplicate
  values *by design*, so they get the conservation audit only);
* **supervision** — no worker ended with an unabsorbed exception;
* **SLO** — submit-latency p99 under ``p99_budget`` seconds.

``record``/``check`` persist the report as ``BENCH_serve.json`` and gate a
fresh run against it — the serving layer's analogue of
``benchmarks/record.py``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.fuzz.oracle import conservation_violations
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFault
from repro.runtime.overload import OverloadPolicy
from repro.runtime.recovery import RestartPolicy
from repro.serve.admission import AdmissionController, AdmissionError, TenantSpec
from repro.serve.service import CoordinatorService
from repro.serve.session import SessionStateError

#: A fresh ``check`` run may be this many times slower than the recorded
#: p99 before the gate trips (load p99 is far noisier than the engine
#: microbenchmark, hence looser than ``benchmarks/record.py``'s 1.25).
LATENCY_BUDGET = 3.0

#: The chaos rotation ``run_load`` assigns round-robin by session index.
DEFAULT_CHAOS = ("crash_then_recover", "slow_task", "flood", "latency_spike")


@dataclass(frozen=True)
class LoadSpec:
    """One load-harness configuration (fully seeded; the chaos schedule —
    though not thread interleaving — is reproducible)."""

    sessions: int = 8
    tenants: int = 2
    workers: int = 2
    duration: float = 2.0
    #: Offered load per session as a multiple of nominal capacity
    #: (``workers / service_time``).
    overload: float = 4.0
    service_time: float = 0.002
    #: Concurrent producer threads per session.  A lone synchronous
    #: producer can never hold more than one operation pending, so the shed
    #: path would stay cold no matter the offered rate — keep this above
    #: ``max_pending`` to make the overload policy actually fire.
    producers: int = 6
    #: Per-vertex admission bound of the tenant overload policy.
    max_pending: int = 4
    seed: int = 0
    chaos: tuple = DEFAULT_CHAOS
    #: Rolling restarts of session ``s0`` spread across the run.
    restarts: int = 1
    #: SLO gate: submit-latency p99 must stay under this many seconds.
    p99_budget: float = 0.25
    submit_timeout: float = 5.0
    #: Arm the service's progress-based stall detector (None = off; the
    #: default chaos includes a deliberately slow session, so only enable
    #: with a bound comfortably above ``service_time``).
    stall_after: float | None = None

    def capacity(self) -> float:
        """Nominal deliveries/second of one session's farm."""
        if self.service_time <= 0.0:
            return 2000.0 * self.workers
        return self.workers / self.service_time


@dataclass
class LoadReport:
    """What one ``run_load`` observed, plus the audit verdicts."""

    spec: dict
    sessions: dict = field(default_factory=dict)
    totals: dict = field(default_factory=dict)
    p50: float = 0.0
    p99: float = 0.0
    max_latency: float = 0.0
    restarts_done: int = 0
    admission: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    exactly_once_failures: list = field(default_factory=list)
    supervisor_failures: list = field(default_factory=list)
    failures: list = field(default_factory=list)
    wall: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        out = asdict(self)
        out["ok"] = self.ok
        return out


def _percentile(latencies: list, q: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _plan_for(kind: str | None, name: str, spec: LoadSpec) -> FaultPlan | None:
    """The seeded chaos plan for one session.  Crash/slow kinds target a
    *worker* inport (the supervised side — the producer thread must never
    be the one crashed); overload/jitter kinds target the intake."""
    if kind is None:
        return None
    intake, w0 = f"{name}:intake", f"{name}:w0"
    if kind == "crash_then_recover":
        specs = [FaultSpec("crash_then_recover", w0, at_op=5)]
    elif kind == "slow_task":
        specs = [FaultSpec("slow_task", w0, at_op=10,
                           delay=max(spec.service_time, 0.002))]
    elif kind == "flood":
        specs = [FaultSpec("flood", intake, at_op=7, factor=2)]
    elif kind == "latency_spike":
        specs = [FaultSpec("latency_spike", intake, at_op=5, delay=0.004,
                           seed=spec.seed)]
    else:
        raise ValueError(f"unknown chaos kind {kind!r}")
    return FaultPlan(specs, name=f"{name}:{kind}")


class _Producer(threading.Thread):
    """One paced submitter thread: a session's producers together offer
    ``overload × capacity`` values/second of unique ids until the
    deadline."""

    def __init__(self, service: CoordinatorService, name: str, rank: int,
                 spec: LoadSpec, deadline: float):
        super().__init__(name=f"load:{name}:{rank}", daemon=True)
        self.service = service
        self.session_name = name
        self.rank = rank
        self.spec = spec
        self.deadline = deadline
        self.ok_ids: list[str] = []
        self.counts = {"submitted": 0, "ok": 0, "rejected": 0, "timeout": 0}
        self.latencies: list[float] = []
        self.error: BaseException | None = None

    def run(self) -> None:
        interval = max(1, self.spec.producers) / (
            self.spec.overload * self.spec.capacity()
        )
        next_t = time.monotonic()
        seq = 0
        try:
            while time.monotonic() < self.deadline:
                vid = f"{self.session_name}:{self.rank}:{seq}"
                seq += 1
                t0 = time.perf_counter()
                try:
                    outcome = self.service.submit(
                        self.session_name, vid,
                        timeout=self.spec.submit_timeout,
                    )
                except SessionStateError:
                    return  # quarantined or closed under us: stop offering
                self.latencies.append(time.perf_counter() - t0)
                self.counts["submitted"] += 1
                self.counts[outcome] += 1
                if outcome == "ok":
                    self.ok_ids.append(vid)
                next_t += interval
                nap = next_t - time.monotonic()
                if nap > 0:
                    time.sleep(nap)
                else:
                    next_t = time.monotonic()  # behind: do not burst-catch-up
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            self.error = exc


def run_load(spec: LoadSpec = LoadSpec()) -> LoadReport:
    """Drive the service per ``spec``; returns the audited
    :class:`LoadReport` (``report.ok`` is the SLO gate)."""
    t_start = time.perf_counter()
    kinds = tuple(spec.chaos)
    quota = max(1, math.ceil(spec.sessions / max(1, spec.tenants)))
    policy = OverloadPolicy(
        "shed_newest", max_pending=spec.max_pending,
        # retain every shed value: the exactly-once audit needs the full
        # dead-letter record, so eviction is sized out of the picture
        dead_letter_capacity=max(100_000, spec.max_pending),
    )
    controller = AdmissionController(tenants=tuple(
        TenantSpec(f"t{j}", max_sessions=quota, overload=policy,
                   workers=spec.workers)
        for j in range(max(1, spec.tenants))
    ))
    restart_policy = RestartPolicy(
        max_retries=4, backoff_base=0.005, backoff_max=0.05,
        seed=spec.seed, restart_on=(InjectedFault,),
    )
    service = CoordinatorService(controller, stall_after=spec.stall_after)
    service.start()

    names = [f"s{i}" for i in range(spec.sessions)]
    chaos_of: dict[str, str | None] = {}
    plans: dict[str, FaultPlan | None] = {}
    for i, name in enumerate(names):
        kind = kinds[i % len(kinds)] if kinds else None
        chaos_of[name] = kind
        plans[name] = _plan_for(kind, name, spec)
        service.open_session(
            name, tenant=f"t{i % max(1, spec.tenants)}",
            fault_plan=plans[name], service_time=spec.service_time,
            restart_policy=restart_policy,
        )

    # probe the admission-rejection path: tenant t0 is now at quota
    admission_rejected = False
    try:
        service.open_session("overflow", tenant="t0")
    except AdmissionError:
        admission_rejected = True

    deadline = time.monotonic() + spec.duration
    producers = [
        _Producer(service, name, rank, spec, deadline)
        for name in names for rank in range(max(1, spec.producers))
    ]
    for producer in producers:
        producer.start()

    restarts_done = 0
    restart_errors: list[str] = []
    for _ in range(spec.restarts):
        time.sleep(spec.duration / (spec.restarts + 1))
        try:
            service.rolling_restart(names[0])
            restarts_done += 1
        except Exception as exc:  # noqa: BLE001 - audited below
            restart_errors.append(f"rolling restart of {names[0]}: {exc!r}")

    for producer in producers:
        producer.join(timeout=spec.duration + spec.submit_timeout + 30.0)
    service.close()

    report = LoadReport(spec=asdict(spec))
    report.restarts_done = restarts_done
    report.failures.extend(restart_errors)
    report.admission = {
        "quota_per_tenant": quota,
        "rejection_probed": admission_rejected,
    }
    if not admission_rejected:
        report.failures.append(
            "admission probe past the tenant quota was not rejected"
        )

    latencies: list[float] = []
    totals = {"submitted": 0, "ok": 0, "rejected": 0, "timeout": 0,
              "delivered": 0, "dead_letters": 0}
    for producer in producers:
        if producer.is_alive():
            report.failures.append(f"producer {producer.name} failed to stop")
        if producer.error is not None:
            report.failures.append(
                f"producer {producer.name} crashed: {producer.error!r}"
            )
        latencies.extend(producer.latencies)

    for name in names:
        mine = [p for p in producers if p.session_name == name]
        session = service.session(name)
        delivered = list(session.delivered)
        dead = list(session.dead_letters())
        row = {key: sum(p.counts[key] for p in mine)
               for key in ("submitted", "ok", "rejected", "timeout")}
        row.update(
            chaos=chaos_of[name],
            delivered=len(delivered),
            dead_letters=len(dead),
            dropped=len(session.dropped),
            restarts=session.restarts,
            faults_applied=[str(s) for s in plans[name].applied]
            if plans[name] is not None else [],
        )
        report.sessions[name] = row
        for key in ("submitted", "ok", "rejected", "timeout"):
            totals[key] += row[key]
        totals["delivered"] += len(delivered)
        totals["dead_letters"] += len(dead)

        # conservation: every session, over its own registry
        report.violations.extend(conservation_violations(
            session.registry, label=f"{name}: "
        ))

        # exactly-once: flood-free sessions only (floods duplicate by design)
        if chaos_of[name] != "flood":
            landed = (delivered + [letter.value for letter in dead]
                      + list(session.dropped))
            if len(landed) != len(set(landed)):
                report.exactly_once_failures.append(
                    f"{name}: duplicate deliveries"
                )
            admitted = {vid for p in mine for vid in p.ok_ids}
            missing = admitted - set(landed)
            if missing:
                report.exactly_once_failures.append(
                    f"{name}: {len(missing)} admitted value(s) vanished "
                    f"(e.g. {sorted(missing)[:3]})"
                )

        # supervision: no worker may end with an unabsorbed exception
        for record in session._group.handles:
            if record.exception is not None and not record.departed:
                report.supervisor_failures.append(
                    f"{name}/{record.name}: {record.exception!r}"
                )

    report.totals = totals
    report.p50 = _percentile(latencies, 0.50)
    report.p99 = _percentile(latencies, 0.99)
    report.max_latency = max(latencies) if latencies else 0.0

    if report.violations:
        report.failures.append(
            f"{len(report.violations)} conservation violation(s)"
        )
    if report.exactly_once_failures:
        report.failures.append(
            f"{len(report.exactly_once_failures)} exactly-once failure(s)"
        )
    if report.supervisor_failures:
        report.failures.append(
            f"{len(report.supervisor_failures)} unhandled supervisor "
            "exception(s)"
        )
    if restarts_done < spec.restarts:
        report.failures.append(
            f"only {restarts_done}/{spec.restarts} rolling restarts completed"
        )
    if report.p99 > spec.p99_budget:
        report.failures.append(
            f"p99 {report.p99:.4f}s over the {spec.p99_budget:.4f}s budget"
        )
    report.wall = time.perf_counter() - t_start
    return report


# -- the BENCH_serve.json gate ----------------------------------------------

def record(path: str, spec: LoadSpec = LoadSpec()) -> LoadReport:
    """Run the harness and persist spec + report as the baseline."""
    report = run_load(spec)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"spec": asdict(spec), "report": report.as_dict()},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def check(path: str) -> tuple[bool, list[str], LoadReport]:
    """Re-run the baseline's spec and gate the fresh report: every audit
    must pass and p99 may regress at most ``LATENCY_BUDGET``× against the
    recorded value (never below the spec's own absolute budget)."""
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    spec_dict = dict(baseline["spec"])
    spec_dict["chaos"] = tuple(spec_dict.get("chaos", DEFAULT_CHAOS))
    spec = LoadSpec(**spec_dict)
    fresh = run_load(spec)
    messages = list(fresh.failures)
    allowed = max(baseline["report"]["p99"] * LATENCY_BUDGET, spec.p99_budget)
    if fresh.p99 > allowed:
        messages.append(
            f"p99 {fresh.p99:.4f}s over the recorded-baseline gate "
            f"{allowed:.4f}s (recorded {baseline['report']['p99']:.4f}s "
            f"x {LATENCY_BUDGET})"
        )
    return (not messages, messages, fresh)
