"""The multi-tenant coordinator service.

:class:`CoordinatorService` hosts many named
:class:`~repro.serve.session.FarmSession`\\ s — each an independent
connector, supervised worker group, and *its own* metrics registry, so one
tenant's counters never pollute another's conservation books.  The service
itself keeps a separate registry for the three ``repro_serve_*`` families
(admissions, restarts, and the sampled session-state gauge).

Sessions are **sharded across a worker pool keyed by the vertex→region
routing table**: a session's shard is a stable digest of its name plus the
``(vertex, region)`` assignment its engine's partitioner produced, so
sessions whose protocols partition alike land on the same shard and
admin operations (restart, quarantine, close) serialize per shard — never
globally.  ``submit`` takes no shard lock at all; the session's own intake
gate is the only synchronization on the hot path.

With ``stall_after`` set, :meth:`start` runs one maintenance thread per
shard: a progress-based stall detector that quarantines any RUNNING
session whose delivered count stops moving for ``stall_after`` seconds
while it still has a backlog (in-flight submits, pending operations, or
buffered values).  This is the service-level analogue of the task
watchdog: it catches a *wedged session*, not a wedged task.

With ``state_dir`` set, every session is **durable**
(:mod:`repro.runtime.durable`): admissions and deliveries are journaled
write-ahead, :meth:`durable_checkpoint` commits snapshot generations at
quiescent points, and a *cold* service calls :meth:`recover_sessions` to
rebuild every session found in the state directory — configuration from
the snapshot's metadata record, protocol state from the checkpoint, and
the exactly-once delivery book from snapshot + journal replay.  See
docs/DURABILITY.md.
"""

from __future__ import annotations

import threading
import time
import zlib

from repro.runtime.durable import DurableStore, SessionDurability
from repro.runtime.errors import RuntimeProtocolError, StallError
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.overload import OverloadPolicy
from repro.serve.admission import AdmissionController, AdmissionError, TenantSpec
from repro.serve.session import ADMIN_TIMEOUT, FarmSession, SessionState


class _Shard:
    """One shard of the session table: an admin lock, its members, and the
    progress marks its maintenance thread probes."""

    __slots__ = ("index", "lock", "sessions", "marks")

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.RLock()
        self.sessions: dict[str, FarmSession] = {}
        #: name -> (delivered count at last progress, monotonic timestamp)
        self.marks: dict[str, tuple[int, float]] = {}


class CoordinatorService:
    """Host, admit, shard, supervise, and restart named sessions.

    * ``admission`` — an :class:`AdmissionController`; the default admits
      any tenant under a permissive open-tenancy spec.
    * ``metrics`` — the *service* registry for the ``repro_serve_*``
      families (sessions each get their own registry).
    * ``shards`` — size of the admin worker pool.
    * ``stall_after`` / ``probe_interval`` — arm the per-shard stall
      detector (see :meth:`start`); ``stall_after=None`` leaves it off.
    * ``state_dir`` — root of the durable store; every session opened on
      this service becomes crash-consistent.  ``retention``/``fsync``
      forward to the store; ``auto_checkpoint`` (seconds) arms each
      session's periodic snapshot thread.

    Usable as a context manager: ``with CoordinatorService() as svc: ...``
    starts the maintenance threads (when armed) and closes every session
    on exit.
    """

    def __init__(
        self,
        admission: AdmissionController | None = None,
        metrics: MetricsRegistry | None = None,
        *,
        shards: int = 4,
        stall_after: float | None = None,
        probe_interval: float = 0.05,
        state_dir=None,
        retention: int | None = None,
        fsync: bool = False,
        auto_checkpoint: float | None = None,
    ):
        if shards < 1:
            raise RuntimeProtocolError("service needs at least one shard")
        self.durable: DurableStore | None = None
        if state_dir is not None:
            kwargs = {"fsync": fsync}
            if retention is not None:
                kwargs["retention"] = retention
            self.durable = DurableStore(state_dir, **kwargs)
        self.auto_checkpoint = auto_checkpoint
        self.admission = admission if admission is not None else (
            AdmissionController(default=TenantSpec("default", max_sessions=64))
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stall_after = stall_after
        self.probe_interval = probe_interval
        self._shards = [_Shard(i) for i in range(shards)]
        self._table_lock = threading.RLock()
        self._sessions: dict[str, FarmSession] = {}
        self._shard_of_name: dict[str, _Shard] = {}
        self._admissions = self.metrics.counter("repro_serve_admissions_total")
        self._restarts = self.metrics.counter("repro_serve_restarts_total")
        self.metrics.gauge("repro_serve_sessions").set_callback(
            self, self._sample_sessions
        )
        self._probes: list[threading.Thread] = []
        self._stop = threading.Event()

    # -- sharding ------------------------------------------------------------

    def _route_signature(self, session: FarmSession) -> tuple:
        """The engine's vertex→region assignment as a hashable, stable
        tuple (region identity by position in ``engine.regions``)."""
        engine = session.connector.engine
        index = {id(region): i for i, region in enumerate(engine.regions)}
        return tuple(sorted(
            (vertex, index[id(region)])
            for vertex, region in engine._route.items()
        ))

    def _shard_for(self, session: FarmSession) -> _Shard:
        key = repr((session.name, self._route_signature(session)))
        digest = zlib.crc32(key.encode("utf-8"))
        return self._shards[digest % len(self._shards)]

    def _lookup(self, name: str) -> tuple[FarmSession, _Shard]:
        with self._table_lock:
            session = self._sessions.get(name)
            if session is None:
                raise RuntimeProtocolError(f"unknown session {name!r}")
            return session, self._shard_of_name[name]

    # -- metrics -------------------------------------------------------------

    def _sample_sessions(self):
        with self._table_lock:
            rows = [(s.tenant, s.state.value) for s in self._sessions.values()]
        counts: dict[tuple[str, str], int] = {}
        for row in rows:
            counts[row] = counts.get(row, 0) + 1
        return counts.items()

    # -- the serving surface -------------------------------------------------

    def open_session(
        self,
        name: str,
        tenant: str = "default",
        *,
        workers: int | None = None,
        policy=None,
        restart_policy=None,
        fault_plan=None,
        service_time: float = 0.0,
        registry: MetricsRegistry | None = None,
        default_timeout: float = ADMIN_TIMEOUT,
        concurrency: str = "regions",
        engine_workers: int | None = None,
    ) -> FarmSession:
        """Admit and open one session for ``tenant``.

        The tenant's :class:`TenantSpec` supplies the worker count and
        overload policy unless overridden per session.  Raises
        :class:`AdmissionError` (and counts a rejection) on unknown tenant
        or exhausted quota; raises :class:`RuntimeProtocolError` on a
        duplicate name."""
        with self._table_lock:
            if name in self._sessions:
                raise RuntimeProtocolError(
                    f"session {name!r} already exists"
                )
            open_count = sum(
                1 for s in self._sessions.values()
                if s.tenant == tenant and s.state is not SessionState.CLOSED
            )
            try:
                spec = self.admission.admit(tenant, open_count)
            except AdmissionError:
                self._admissions.labels(tenant, "rejected").inc()
                raise
            self._admissions.labels(tenant, "admitted").inc()
            durability = None
            if self.durable is not None:
                durability = SessionDurability(self.durable.session(name))
            session = FarmSession(
                name,
                tenant,
                workers=workers if workers is not None else spec.workers,
                policy=policy if policy is not None else spec.overload,
                registry=registry,
                restart_policy=restart_policy,
                fault_plan=fault_plan,
                service_time=service_time,
                default_timeout=default_timeout,
                durability=durability,
                auto_checkpoint=self.auto_checkpoint,
                concurrency=concurrency,
                engine_workers=engine_workers,
            )
            session.open()
            shard = self._shard_for(session)
            self._sessions[name] = session
            self._shard_of_name[name] = shard
            with shard.lock:
                shard.sessions[name] = session
                shard.marks[name] = (0, time.monotonic())
            return session

    def recover_sessions(self) -> list[str]:
        """Cold-start recovery: rebuild and open every session with durable
        state on disk (a no-op without ``state_dir``).

        Each session's configuration — tenant, worker count, overload
        policy, service time — comes from the metadata record of its
        newest valid snapshot; the protocol state and exactly-once
        delivery book come from :meth:`FarmSession.open`'s recovery path.
        Returns the recovered session names (sorted).  Sessions already
        open under the same name are skipped (recovery is idempotent)."""
        if self.durable is None:
            return []
        recovered = []
        for name in self.durable.sessions():
            with self._table_lock:
                if name in self._sessions:
                    continue
            meta = self.durable.session(name).peek_meta()
            if not meta:
                continue  # directory without a loadable snapshot
            policy = None
            if meta.get("policy"):
                policy = OverloadPolicy(**meta["policy"])
            self.open_session(
                name,
                meta.get("tenant", "default"),
                workers=meta.get("workers"),
                policy=policy,
                service_time=meta.get("service_time", 0.0),
                default_timeout=meta.get("default_timeout", ADMIN_TIMEOUT),
                concurrency=meta.get("concurrency", "regions"),
                engine_workers=meta.get("engine_workers"),
            )
            recovered.append(name)
        return sorted(recovered)

    def durable_checkpoint(self, name: str, timeout: float = ADMIN_TIMEOUT):
        """Commit one durable snapshot generation for ``name`` under its
        shard's admin lock; returns the checkpoint."""
        session, shard = self._lookup(name)
        with shard.lock:
            cp = session.durable_checkpoint(timeout=timeout)
            shard.marks[name] = (len(session.delivered), time.monotonic())
        return cp

    def session(self, name: str) -> FarmSession:
        return self._lookup(name)[0]

    def submit(self, name: str, value, timeout: float | None = None) -> str:
        """Offer one value to a hosted session's intake (no shard lock —
        the session's own gate is the only hot-path synchronization)."""
        session, _ = self._lookup(name)
        return session.submit(value, timeout=timeout)

    def rolling_restart(self, name: str, new_workers: int | None = None,
                        timeout: float = ADMIN_TIMEOUT):
        """Checkpoint/rebuild/restore one session under its shard's admin
        lock; re-shards afterwards (a reduced arity changes the routing
        table, which keys the shard)."""
        session, shard = self._lookup(name)
        with shard.lock:
            cp = session.rolling_restart(new_workers, timeout=timeout)
            self._restarts.labels(name).inc()
            shard.marks[name] = (len(session.delivered), time.monotonic())
        self._reshard(name, session, shard)
        return cp

    def _reshard(self, name: str, session: FarmSession, old: _Shard) -> None:
        new = self._shard_for(session)
        if new is old:
            return
        with self._table_lock:
            first, second = sorted((old, new), key=lambda s: s.index)
            with first.lock, second.lock:
                mark = old.marks.pop(name, (len(session.delivered),
                                            time.monotonic()))
                old.sessions.pop(name, None)
                new.sessions[name] = session
                new.marks[name] = mark
                self._shard_of_name[name] = new

    def quarantine(self, name: str, cause: BaseException | None = None) -> None:
        session, shard = self._lookup(name)
        with shard.lock:
            session.quarantine(cause)
            shard.marks.pop(name, None)

    def close_session(self, name: str,
                      drain_timeout: float = ADMIN_TIMEOUT) -> None:
        session, shard = self._lookup(name)
        with shard.lock:
            session.close(drain_timeout)
            shard.sessions.pop(name, None)
            shard.marks.pop(name, None)

    def status(self) -> dict[str, dict]:
        """One row per session the service ever admitted (closed sessions
        stay in the table so their books remain auditable)."""
        with self._table_lock:
            items = list(self._sessions.items())
            shards = dict(self._shard_of_name)
        return {
            name: {
                "tenant": s.tenant,
                "state": s.state.value,
                "shard": shards[name].index,
                "workers": s.workers,
                "restarts": s.restarts,
                "delivered": len(s.delivered),
                "dead_letters": len(s.dead_letters()),
                "backlog": (
                    s.backlog() if s.state is SessionState.RUNNING else 0
                ),
            }
            for name, s in items
        }

    # -- the maintenance pool ------------------------------------------------

    def start(self) -> "CoordinatorService":
        """Start one maintenance thread per shard (no-op unless
        ``stall_after`` is set)."""
        if self.stall_after is None or self._probes:
            return self
        self._stop.clear()
        for shard in self._shards:
            thread = threading.Thread(
                target=self._probe_loop, args=(shard,),
                name=f"serve-shard{shard.index}", daemon=True,
            )
            thread.start()
            self._probes.append(thread)
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in self._probes:
            thread.join(timeout=ADMIN_TIMEOUT)
        self._probes.clear()

    def _probe_loop(self, shard: _Shard) -> None:
        while not self._stop.wait(self.probe_interval):
            with shard.lock:
                for name, session in list(shard.sessions.items()):
                    self._probe_one(shard, name, session)

    def _probe_one(self, shard: _Shard, name: str,
                   session: FarmSession) -> None:
        if session.state is not SessionState.RUNNING:
            # lifecycle operations in flight are progress, not a stall
            shard.marks[name] = (len(session.delivered), time.monotonic())
            return
        delivered = len(session.delivered)
        marked, since = shard.marks.get(name, (delivered, time.monotonic()))
        now = time.monotonic()
        if delivered != marked or session.backlog() == 0:
            shard.marks[name] = (delivered, now)
            return
        if now - since >= self.stall_after:
            session.quarantine(StallError(name, now - since,
                                          "session made no progress with a "
                                          "backlog; quarantined by the "
                                          "service stall detector"))
            shard.sessions.pop(name, None)
            shard.marks.pop(name, None)

    # -- teardown ------------------------------------------------------------

    def close(self, drain_timeout: float = ADMIN_TIMEOUT) -> None:
        """Stop the maintenance pool and close every non-closed session."""
        self.stop()
        with self._table_lock:
            names = [
                n for n, s in self._sessions.items()
                if s.state is not SessionState.CLOSED
            ]
        for name in names:
            try:
                self.close_session(name, drain_timeout)
            except RuntimeProtocolError:
                pass

    def __enter__(self) -> "CoordinatorService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
