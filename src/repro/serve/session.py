"""Hosted protocol sessions — lifecycle state machine and the farm shape.

A *session* is the unit the coordinator service admits, supervises, and
restarts: one connector instance plus whatever tasks serve it, owned by a
tenant, moving through an explicit lifecycle::

    ADMITTED ──> RUNNING ──> DRAINING ──> CHECKPOINTED ──> RESTORING ──┐
                    ^  │         │                                     │
                    │  │         └──────────> (abort: back to RUNNING) │
                    │  └──> QUARANTINED ──> CLOSED                     │
                    └──────────────────────────────────────────────────┘

Every state except CLOSED can also transition to CLOSED.  Transitions are
validated under a lock; an illegal one raises the typed
:class:`SessionStateError` instead of silently corrupting the lifecycle.

Two concrete shapes:

* :class:`Session` — the generic core: a connector built by a caller-
  supplied factory, checkpointed/reopened/closed through the state machine.
  This is what the differential fuzzer's serve-hosted mode drives
  (:mod:`repro.fuzz.harness`, mode ``serve-jit``): hosting must add *no*
  observable protocol behaviour, which the trace-equivalence oracle checks.

* :class:`FarmSession` — the serving shape: one intake
  :class:`~repro.runtime.ports.Outport` feeding an ``EarlyAsyncRouter``
  farm of supervised worker receivers, with a tenant
  :class:`~repro.runtime.overload.OverloadPolicy` on the intake vertex and
  a **rolling restart** that checkpoints at a quiescent point, rebuilds a
  fresh engine (optionally at reduced arity via the
  :meth:`~repro.runtime.connector.RuntimeConnector.leave` path), restores,
  and resumes exactly-once: every value admitted before the restart is
  either delivered to a worker or captured in the dead-letter buffer —
  never lost, never duplicated.

The quiescence protocol behind :meth:`FarmSession.rolling_restart` is the
part worth reading twice.  ``checkpoint()`` demands no pending operations
and no blocked waiters, so the session (1) closes the intake gate and waits
for in-flight submits to reach zero — submits reserve an in-flight slot
*under the same lock* that re-checks the gate, so no submit can slip past a
closed gate; (2) parks the workers — each worker polls with a short receive
timeout, and a timed-out receive withdraws its pending operation (counted
in ``repro_ops_withdrawn_total``), so a parked farm converges to a
genuinely quiescent engine within one tick; (3) checkpoints, captures the
dead letters of the dying generation, rebuilds with the *same* metrics
registry (counters continue across generations, so the conservation law
``submitted == completed + shed + rejected + withdrawn`` holds cumulatively
over the session's whole life), restores, and lifts both gates.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable

from repro.connectors import library
from repro.runtime.errors import (
    CheckpointError,
    DurabilityError,
    OverloadError,
    PortClosedError,
    ProtocolTimeoutError,
    ReproRuntimeError,
    RuntimeProtocolError,
)
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.ports import Inport, Outport

#: Worker receive-poll tick (seconds).  Short enough that parking a farm
#: for a rolling restart converges quickly; long enough that the
#: timeout-withdraw background rate stays negligible.
RECV_TICK = 0.02

#: Default bound on lifecycle operations (parking, draining, restoring).
ADMIN_TIMEOUT = 10.0


class SessionState(str, Enum):
    """Lifecycle states (the string values double as metric labels)."""

    ADMITTED = "admitted"
    RUNNING = "running"
    DRAINING = "draining"
    CHECKPOINTED = "checkpointed"
    RESTORING = "restoring"
    QUARANTINED = "quarantined"
    CLOSED = "closed"


#: Legal transitions; everything non-CLOSED may also close.
_TRANSITIONS: dict[SessionState, frozenset[SessionState]] = {
    SessionState.ADMITTED: frozenset({SessionState.RUNNING}),
    SessionState.RUNNING: frozenset(
        {SessionState.DRAINING, SessionState.QUARANTINED}
    ),
    SessionState.DRAINING: frozenset(
        {SessionState.CHECKPOINTED, SessionState.RUNNING}
    ),
    SessionState.CHECKPOINTED: frozenset({SessionState.RESTORING}),
    SessionState.RESTORING: frozenset({SessionState.RUNNING}),
    SessionState.QUARANTINED: frozenset(),
    SessionState.CLOSED: frozenset(),
}


class SessionStateError(ReproRuntimeError):
    """An operation was attempted in a lifecycle state that forbids it."""

    def __init__(self, session: str, state: SessionState, wanted: SessionState):
        self.session = session
        self.state = state
        self.wanted = wanted
        super().__init__(
            f"session {session!r} is {state.value}; cannot transition to "
            f"{wanted.value}"
        )


class Session:
    """The generic hosted-session core: one connector behind the lifecycle
    state machine.

    ``factory`` builds (and connects) the connector; it is called once by
    :meth:`open` and again by every :meth:`reopen` — the rebuild half of a
    checkpoint/restore round-trip.  Subclasses (and the fuzz harness) own
    what the factory wires; the base class owns *when* it may be called.
    """

    def __init__(self, name: str, tenant: str = "default", *,
                 factory: Callable[[], object]):
        self.name = name
        self.tenant = tenant
        self._factory = factory
        self.state = SessionState.ADMITTED
        self.connector = None
        self.checkpoints: list = []  # taken checkpoints, in order
        self.restarts = 0            # completed reopen round-trips
        self.quarantine_cause: BaseException | None = None
        self._state_lock = threading.RLock()

    # -- state machine ------------------------------------------------------

    def _transition(self, to: SessionState) -> None:
        with self._state_lock:
            legal = _TRANSITIONS[self.state]
            if to is not SessionState.CLOSED and to not in legal:
                raise SessionStateError(self.name, self.state, to)
            if to is SessionState.CLOSED and self.state is SessionState.CLOSED:
                raise SessionStateError(self.name, self.state, to)
            self.state = to

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> "Session":
        """ADMITTED → RUNNING: build the connector and start serving."""
        self._transition(SessionState.RUNNING)
        self.connector = self._factory()
        return self

    def checkpoint(self, name: str = ""):
        """RUNNING → DRAINING → CHECKPOINTED: snapshot at quiescence.

        On a :class:`CheckpointError` (the engine was not quiescent, or is
        draining toward close) the session transitions back to RUNNING and
        the typed error propagates — a failed snapshot never wedges the
        lifecycle."""
        with self._state_lock:
            self._transition(SessionState.DRAINING)
            try:
                cp = self.connector.checkpoint(name or self.name)
            except CheckpointError:
                self._transition(SessionState.RUNNING)
                raise
            self.checkpoints.append(cp)
            self._transition(SessionState.CHECKPOINTED)
            return cp

    def reopen(self, cp=None) -> "Session":
        """CHECKPOINTED → RESTORING → RUNNING: rebuild a fresh connector via
        the factory and restore ``cp`` (default: the latest checkpoint)."""
        with self._state_lock:
            self._transition(SessionState.RESTORING)
            if cp is None:
                cp = self.checkpoints[-1]
            _quiet_close(self.connector)
            self.connector = self._factory()
            self.connector.restore(cp)
            self.restarts += 1
            self._transition(SessionState.RUNNING)
            return self

    def quarantine(self, cause: BaseException | None = None) -> None:
        """RUNNING → QUARANTINED: the watchdog path — stop serving without
        a drain (the session is presumed stuck), record the cause."""
        with self._state_lock:
            self._transition(SessionState.QUARANTINED)
            self.quarantine_cause = cause
        _quiet_close(self.connector)

    def close(self) -> None:
        """Any live state → CLOSED (idempotent)."""
        with self._state_lock:
            if self.state is SessionState.CLOSED:
                return
            self.state = SessionState.CLOSED
        _quiet_close(self.connector)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name} ({self.state.value}, "
                f"tenant={self.tenant}, restarts={self.restarts})>")


class FarmSession(Session):
    """The serving shape: intake → ``EarlyAsyncRouter(workers)`` → a
    supervised worker pool of receive loops.

    * ``policy`` — the tenant's :class:`OverloadPolicy`, installed on the
      intake vertex (admission control at the *operation* level; the
      session-level quota lives in :mod:`repro.serve.admission`).
    * ``restart_policy`` — forwarded to the worker
      :class:`~repro.runtime.tasks.SupervisedTaskGroup`, so injected
      recoverable crashes heal in place.
    * ``fault_plan`` — a :class:`~repro.runtime.faults.FaultPlan` wrapping
      the session's ports (chaos is injected at the boundary, never inside
      the engine).  Port names are pinned (``<name>:intake``,
      ``<name>:w<k>``) so plans target sessions stably across rebuilds.
    * ``service_time`` — per-delivery worker sleep, modelling bounded
      capacity (what makes overload *real* in the load harness).
    * ``durability`` — a :class:`~repro.runtime.durable.SessionDurability`
      making the session crash-consistent (docs/DURABILITY.md): every
      admission intent and acknowledged delivery is journaled write-ahead,
      :meth:`durable_checkpoint` commits snapshot generations at the same
      gate-and-park quiescent points the rolling restart uses, and
      :meth:`open` transparently performs cold-start recovery when the
      state directory holds a previous incarnation's state.
    * ``auto_checkpoint`` — seconds between periodic durable checkpoints
      (a background thread; needs ``durability``).  A tick that loses the
      quiescence race (or hits a transient disk failure) is skipped, not
      fatal — the journal still bounds the loss window at zero for
      acknowledged work.

    Delivered values accumulate in :attr:`delivered` (order of delivery);
    dead letters survive generation swaps via :meth:`dead_letters`.
    """

    def __init__(
        self,
        name: str,
        tenant: str = "default",
        *,
        workers: int = 2,
        policy=None,
        registry: MetricsRegistry | None = None,
        restart_policy=None,
        fault_plan=None,
        service_time: float = 0.0,
        default_timeout: float = ADMIN_TIMEOUT,
        durability=None,
        auto_checkpoint: float | None = None,
        concurrency: str = "regions",
        engine_workers: int | None = None,
    ):
        super().__init__(name, tenant, factory=self._build)
        if workers < 1:
            raise RuntimeProtocolError(
                f"session {name!r} needs at least one worker"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workers = workers
        self.policy = policy
        self.restart_policy = restart_policy
        self.fault_plan = fault_plan
        self.service_time = service_time
        self.default_timeout = default_timeout
        self.durability = durability
        self.auto_checkpoint = auto_checkpoint
        #: Engine backend for the session's router ("regions" | "global" |
        #: "workers"); with "workers", ``engine_workers`` caps the region
        #: worker *processes* (distinct from ``workers``, the farm size).
        self.concurrency = concurrency
        self.engine_workers = engine_workers
        self._auto_thread: threading.Thread | None = None
        self._auto_stop = threading.Event()

        self.delivered: list = []
        self._delivered_lock = threading.Lock()
        self._dead: list = []  # dead letters captured from closed generations
        #: Values dropped by a shrinking restart's departure (the departed
        #: worker's in-flight buffers) — kept so the exactly-once audit is
        #: ``submitted-ok == delivered + dead_letters + dropped``.
        self.dropped: list = []

        self._intake = None
        self._worker_ins: list = []
        self._group = None
        self._closing = False
        #: Set while workers may receive; cleared to park the farm.
        self._gate = threading.Event()
        #: Per-worker "I am parked" flags, indexed by rank.
        self._idle: list[threading.Event] = []
        #: Set while submits are admitted; cleared to stop the intake.
        self._intake_open = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- construction (called by the Session lifecycle) ---------------------

    def _build(self):
        options = {}
        if self.concurrency != "regions":
            options["concurrency"] = self.concurrency
        if self.engine_workers is not None:
            options["workers"] = self.engine_workers
        conn = library.connector(
            "EarlyAsyncRouter",
            self.workers,
            use_partitioning=True,
            overload=self.policy,
            default_timeout=self.default_timeout,
            metrics=self.registry,
            **options,
        )
        out = Outport(f"{self.name}:intake")
        ins = [Inport(f"{self.name}:w{k}") for k in range(self.workers)]
        conn.connect([out], ins)
        if self.fault_plan is not None:
            out = self.fault_plan.wrap(out)
            ins = [self.fault_plan.wrap(p) for p in ins]
        self._intake = out
        self._worker_ins = ins
        return conn

    def _durable_meta(self) -> dict:
        """The session configuration a cold service needs to rebuild this
        session from its snapshot alone (``recover_sessions``)."""
        policy = None
        if self.policy is not None:
            policy = {
                "kind": self.policy.kind,
                "max_pending": self.policy.max_pending,
                "dead_letter_capacity": self.policy.dead_letter_capacity,
            }
        return {
            "tenant": self.tenant,
            "workers": self.workers,
            "service_time": self.service_time,
            "default_timeout": self.default_timeout,
            "policy": policy,
            "concurrency": self.concurrency,
            "engine_workers": self.engine_workers,
        }

    def open(self) -> "FarmSession":
        recovery = None
        if self.durability is not None:
            self.durability.bind(self.registry)
            recovery = self.durability.recover()
        super().open()
        resubmits: list = []
        if recovery is not None:
            # Cold start: reset the fresh engine to the snapshot state and
            # replay the acknowledged book into the visible delivery log.
            self.connector.restore(recovery.checkpoint)
            with self._delivered_lock:
                self.delivered.extend(self.durability.delivered_values())
        if self.durability is not None:
            # Commit a fresh generation *before* serving (and before the
            # re-injections below), so a second crash replays against a
            # snapshot that already carries the remaining suppress/resubmit
            # state — recovery is idempotent under repeated crashes.
            self.durability.commit(
                self.connector.checkpoint(self.name), self._durable_meta()
            )
            resubmits = self.durability.pop_resubmits()
        from repro.runtime.tasks import SupervisedTaskGroup

        self._group = SupervisedTaskGroup(restart_policy=self.restart_policy,
                                          metrics=self.registry)
        self._idle = [threading.Event() for _ in range(self.workers)]
        for rank in range(self.workers):
            # ports=() on purpose: the session manages drain/close itself,
            # so supervision's only job here is crash healing.
            self._group.spawn(self._worker, rank,
                              name=f"{self.name}:worker{rank}")
        self._gate.set()
        self._intake_open.set()
        for value in resubmits:
            # Admitted before the crash but absent from both the restored
            # engine and the delivery book: re-offer through the raw intake.
            # Deliberately *not* re-journaled — the committed snapshot above
            # already carries these in its resubmit set, so a crash here
            # just re-derives the same re-injections.
            self._intake.send(value, timeout=self.default_timeout)
        if self.auto_checkpoint and self.durability is not None:
            self._auto_stop.clear()
            self._auto_thread = threading.Thread(
                target=self._auto_checkpoint_loop,
                name=f"{self.name}:auto-checkpoint", daemon=True,
            )
            self._auto_thread.start()
        return self

    def _auto_checkpoint_loop(self) -> None:
        while not self._auto_stop.wait(self.auto_checkpoint):
            if self._closing:
                return
            try:
                self.durable_checkpoint()
            except ReproRuntimeError:
                # Lost the quiescence race (admin op in flight, close under
                # way) or a transient durability failure: skip this tick.
                continue

    # -- the worker pool ----------------------------------------------------

    def _worker(self, rank: int) -> None:
        while True:
            if self._closing:
                return
            if not self._gate.is_set():
                if rank >= self.workers:
                    return  # shrunk away by a reduced-arity restart
                self._idle[rank].set()
                self._gate.wait(timeout=RECV_TICK)
                if self._gate.is_set():
                    self._idle[rank].clear()
                continue
            if rank >= self.workers:
                return
            try:
                value = self._worker_ins[rank].recv(timeout=RECV_TICK)
            except ProtocolTimeoutError:
                continue
            except PortClosedError:
                if self._closing:
                    return
                time.sleep(RECV_TICK)  # generation swap in progress
                continue
            if self.durability is not None \
                    and not self.durability.on_delivered(value):
                # A suppressed re-emission: this value's delivery was
                # acknowledged before the crash, the restored engine just
                # replayed it.  Exactly-once means it must not surface twice.
                continue
            with self._delivered_lock:
                self.delivered.append(value)
            if self.service_time:
                time.sleep(self.service_time)

    # -- the serving surface ------------------------------------------------

    def submit(self, value, timeout: float | None = None) -> str:
        """Offer one value to the session's intake.

        Returns ``"ok"`` (completed or shed per the tenant policy — the
        engine sheds transparently), ``"rejected"`` (``fail_fast`` policy at
        its bound), or ``"timeout"`` (blocking policy and the bound
        expired; the operation was withdrawn).  Raises
        :class:`SessionStateError` when the session is not serving and the
        intake does not reopen within the timeout (e.g. a rolling restart
        in progress resolves within ``ADMIN_TIMEOUT``)."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.default_timeout
        )
        while True:
            with self._inflight_lock:
                if self._intake_open.is_set():
                    self._inflight += 1
                    break
            if self._closing or self.state in (
                SessionState.CLOSED, SessionState.QUARANTINED
            ):
                raise SessionStateError(
                    self.name, self.state, SessionState.RUNNING
                )
            if time.monotonic() >= deadline:
                raise SessionStateError(
                    self.name, self.state, SessionState.RUNNING
                )
            self._intake_open.wait(timeout=RECV_TICK)
        try:
            # Write-ahead: the admission intent hits the journal before the
            # engine sees the value, so an acknowledged "ok" always has a
            # durable record.  A rejected/timed-out offer never entered
            # protocol state, so its intent is compensated with an abort.
            seq = None
            if self.durability is not None:
                seq = self.durability.on_submit(value)
            try:
                self._intake.send(value, timeout=timeout)
                return "ok"
            except OverloadError:
                if seq is not None:
                    self.durability.on_abort(seq, value)
                return "rejected"
            except ProtocolTimeoutError:
                if seq is not None:
                    self.durability.on_abort(seq, value)
                return "timeout"
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def backlog(self) -> int:
        """Work admitted but not yet delivered: in-flight submits, pending
        *send* operations, and buffered values.  Pending receives are
        deliberately excluded — an idle farm always has its workers' poll
        receives queued; they are capacity, not work.  The service's stall
        detector quarantines a RUNNING session whose delivered count stops
        moving while this stays positive."""
        with self._inflight_lock:
            total = self._inflight
        conn = self.connector
        if conn is not None and conn.engine is not None and not conn.engine._closed:
            try:
                total += sum(
                    depth for _, kind, depth in conn.engine.pending_depths()
                    if kind == "send"
                )
                total += conn.engine.buffered_total()
            except ReproRuntimeError:
                pass
        return total

    def dead_letters(self) -> tuple:
        """Every dead letter the session ever captured — closed generations
        plus the live one (restores do not carry dead letters; the session
        snapshots them at each generation swap)."""
        live = ()
        conn = self.connector
        if conn is not None and conn.engine is not None and not conn.engine._closed:
            try:
                live = conn.dead_letters()
            except ReproRuntimeError:
                live = ()
        return tuple(self._dead) + tuple(live)

    # -- quiescence plumbing -------------------------------------------------

    def _pause_intake(self, deadline: float) -> None:
        self._intake_open.clear()
        while True:
            with self._inflight_lock:
                if self._inflight == 0:
                    return
            if time.monotonic() >= deadline:
                raise ProtocolTimeoutError(self.name, ADMIN_TIMEOUT,
                                           kind="intake-pause")
            time.sleep(RECV_TICK / 4)

    def _park_workers(self, deadline: float) -> None:
        self._gate.clear()
        for flag in self._idle[: self.workers]:
            if not flag.wait(timeout=max(0.0, deadline - time.monotonic())):
                raise ProtocolTimeoutError(self.name, ADMIN_TIMEOUT,
                                           kind="worker-park")

    def _resume(self) -> None:
        self._gate.set()
        self._intake_open.set()

    # -- durable checkpoint --------------------------------------------------

    def durable_checkpoint(self, timeout: float = ADMIN_TIMEOUT):
        """Commit one durable snapshot generation at a quiescent point.

        Same gate-and-park protocol as :meth:`rolling_restart`, but the
        engine survives: pause the intake, park the workers, checkpoint,
        **commit while still parked** (committing after resume would let an
        interleaved delivery advance the journal past the checkpoint's
        engine state — the snapshot's book must be consistent with its
        checkpoint), then resume.  A :class:`DurabilityError` from the
        commit is re-raised *after* the session resumes serving — a full
        disk degrades durability, it does not wedge the farm.

        Returns the committed checkpoint."""
        if self.durability is None:
            raise RuntimeProtocolError(
                f"session {self.name!r} has no durability "
                "(open the service with --state-dir)"
            )
        deadline = time.monotonic() + timeout
        self._transition(SessionState.DRAINING)
        commit_error: DurabilityError | None = None
        try:
            self._pause_intake(deadline)
            self._park_workers(deadline)
            cp = self.connector.checkpoint(self.name)
            try:
                self.durability.commit(cp, self._durable_meta())
            except DurabilityError as exc:
                commit_error = exc
        except BaseException:
            self._transition(SessionState.RUNNING)
            self._resume()
            raise
        self.checkpoints.append(cp)
        self._transition(SessionState.CHECKPOINTED)
        self._transition(SessionState.RESTORING)
        self._transition(SessionState.RUNNING)
        self._resume()
        if commit_error is not None:
            raise commit_error
        return cp

    # -- rolling restart ----------------------------------------------------

    def rolling_restart(self, new_workers: int | None = None,
                        timeout: float = ADMIN_TIMEOUT):
        """Checkpoint at a quiescent point, rebuild a fresh engine, restore,
        resume — without losing or duplicating a single admitted value.

        ``new_workers`` (< current) shrinks the farm on the way through:
        the surplus workers' inports *leave* the protocol (the PR-2
        re-parametrization path) before the snapshot, so the checkpoint is
        taken at the reduced arity and restores into the smaller rebuild.
        Buffered values migrate across the shrink exactly as ``leave``
        specifies (survivors shift; the departed worker's in-flight values
        are dropped-and-reported — the session records them in
        :attr:`dropped`, so the exactly-once audit becomes
        ``delivered + dead_letters + dropped``).

        Returns the checkpoint that made the round-trip."""
        if new_workers is not None and (
            new_workers < 1 or new_workers > self.workers
        ):
            raise RuntimeProtocolError(
                f"session {self.name!r}: cannot restart {self.workers} "
                f"workers into {new_workers}"
            )
        deadline = time.monotonic() + timeout
        self._transition(SessionState.DRAINING)
        try:
            self._pause_intake(deadline)
            self._park_workers(deadline)
            if new_workers is not None and new_workers < self.workers:
                surplus = self._worker_ins[new_workers:]
                report = self.connector.leave(
                    *surplus, task=f"{self.name}:shrink"
                )
                self.workers = new_workers
                for contents in report.dropped_buffers.values():
                    self.dropped.extend(contents)
            cp = self.connector.checkpoint(self.name)
            if self.durability is not None:
                # Same rule as durable_checkpoint: commit while parked so
                # the snapshot's delivery book matches the engine state the
                # restore below will resurrect.
                self.durability.commit(cp, self._durable_meta())
        except BaseException:
            self._transition(SessionState.RUNNING)
            self._resume()
            raise
        self.checkpoints.append(cp)
        self._transition(SessionState.CHECKPOINTED)
        self._transition(SessionState.RESTORING)
        old = self.connector
        self._dead.extend(old.dead_letters())
        _quiet_close(old)
        self.connector = self._build()
        self.connector.restore(cp)
        self.restarts += 1
        self._transition(SessionState.RUNNING)
        self._resume()
        return cp

    # -- teardown ------------------------------------------------------------

    def quarantine(self, cause: BaseException | None = None) -> None:
        with self._state_lock:
            self._transition(SessionState.QUARANTINED)
            self.quarantine_cause = cause
        self._shutdown(drain=False)

    def close(self, drain_timeout: float = ADMIN_TIMEOUT) -> None:
        with self._state_lock:
            if self.state is SessionState.CLOSED:
                return
            was_quarantined = self.state is SessionState.QUARANTINED
            self.state = SessionState.CLOSED
        if not was_quarantined:
            self._shutdown(drain=True, drain_timeout=drain_timeout)

    def _shutdown(self, drain: bool, drain_timeout: float = ADMIN_TIMEOUT):
        self._auto_stop.set()
        if self._auto_thread is not None:
            self._auto_thread.join(timeout=drain_timeout)
            self._auto_thread = None
        self._intake_open.clear()
        deadline = time.monotonic() + drain_timeout
        try:
            self._pause_intake(deadline)
        except ProtocolTimeoutError:
            pass
        self._gate.set()  # workers must keep consuming through the drain
        conn = self.connector
        if conn is not None:
            if drain:
                self._dead.extend(conn.dead_letters())
                try:
                    conn.drain(timeout=drain_timeout)
                except (ProtocolTimeoutError, RuntimeProtocolError):
                    _quiet_close(conn)
            else:
                self._dead.extend(conn.dead_letters())
                _quiet_close(conn)
        self._closing = True
        if self._group is not None:
            self._group._shutdown = True  # stop restarts during teardown
            for record in self._group.handles:
                try:
                    record.join(drain_timeout)
                except (ReproRuntimeError, TimeoutError):
                    pass
        if self.durability is not None:
            self.durability.close()


def _quiet_close(conn) -> None:
    if conn is None:
        return
    try:
        conn.close()
    except Exception:  # noqa: BLE001 - teardown must not mask the caller
        pass
