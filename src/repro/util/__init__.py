"""Shared utilities: error taxonomy, naming, timing, union-find.

These helpers are deliberately dependency-free; every other subpackage of
:mod:`repro` may import from here, never the other way around.
"""

from repro.util.errors import (
    ReproError,
    CompilationError,
    CompilationBudgetExceeded,
    ParseError,
    ScopeError,
    WellFormednessError,
    ConstraintError,
    RuntimeProtocolError,
    DeadlockError,
    PortClosedError,
)
from repro.util.naming import FreshNames, qualify
from repro.util.timing import Stopwatch, ThroughputMeter
from repro.util.unionfind import UnionFind

__all__ = [
    "ReproError",
    "CompilationError",
    "CompilationBudgetExceeded",
    "ParseError",
    "ScopeError",
    "WellFormednessError",
    "ConstraintError",
    "RuntimeProtocolError",
    "DeadlockError",
    "PortClosedError",
    "FreshNames",
    "qualify",
    "Stopwatch",
    "ThroughputMeter",
    "UnionFind",
]
