"""Error taxonomy for the whole library.

Every exception raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without catching
programming errors.  The hierarchy mirrors the pipeline: parsing/scoping →
compilation → runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised by the DSL lexer/parser on malformed protocol source.

    Carries the 1-based source position for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ScopeError(ReproError):
    """Raised when a name is unbound, rebound, or used with the wrong arity."""


class WellFormednessError(ReproError):
    """Raised when a connector graph violates structural well-formedness.

    Examples: a vertex written by two arc ends, an arc referencing a vertex
    absent from the graph, an empty array parameter.
    """


class CompilationError(ReproError):
    """Raised when a protocol cannot be compiled (either approach)."""


class CompilationBudgetExceeded(CompilationError):
    """Raised when eager (ahead-of-time) composition exceeds its state budget.

    This models the paper's observation that the *existing* compiler fails on
    connectors whose large automaton has a state space exponential in the
    number of medium automata (Fig. 12, dotted bins).
    """

    def __init__(self, budget: int, reached: int, message: str = ""):
        self.budget = budget
        self.reached = reached
        super().__init__(
            message
            or f"state budget exceeded: explored {reached} states, budget {budget}"
        )


class ConstraintError(ReproError):
    """Raised when a transition's data constraint cannot be planned or solved."""


class RuntimeProtocolError(ReproError):
    """Raised on protocol misuse at run time (e.g. port bound twice)."""


class DeadlockError(RuntimeProtocolError):
    """Raised when every registered task is blocked and no transition is enabled."""


class PortClosedError(RuntimeProtocolError):
    """Raised by send/recv on a closed port, and delivered to blocked peers."""
