"""Error taxonomy for the whole library.

Every exception raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without catching
programming errors.  The hierarchy mirrors the pipeline: parsing/scoping →
compilation → runtime.

The runtime half of the taxonomy shares the :class:`ReproRuntimeError`
base (PR 7) and is re-exported by :mod:`repro.runtime.errors` — the
runtime-facing import site the serving layer uses.  The classes are
*defined* here because :mod:`repro.util` is the dependency-free root every
other subpackage may import from (see ``repro/util/__init__.py``); both
module paths resolve to the same class objects.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised by the DSL lexer/parser on malformed protocol source.

    Carries the 1-based source position for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ScopeError(ReproError):
    """Raised when a name is unbound, rebound, or used with the wrong arity."""


class WellFormednessError(ReproError):
    """Raised when a connector graph violates structural well-formedness.

    Examples: a vertex written by two arc ends, an arc referencing a vertex
    absent from the graph, an empty array parameter.
    """


class CompilationError(ReproError):
    """Raised when a protocol cannot be compiled (either approach)."""


class CompilationBudgetExceeded(CompilationError):
    """Raised when eager (ahead-of-time) composition exceeds its state budget.

    This models the paper's observation that the *existing* compiler fails on
    connectors whose large automaton has a state space exponential in the
    number of medium automata (Fig. 12, dotted bins).
    """

    def __init__(self, budget: int, reached: int, message: str = ""):
        self.budget = budget
        self.reached = reached
        super().__init__(
            message
            or f"state budget exceeded: explored {reached} states, budget {budget}"
        )


class ConstraintError(ReproError):
    """Raised when a transition's data constraint cannot be planned or solved."""


# --------------------------------------------------------------------------
# Runtime errors: one catchable hierarchy under ReproRuntimeError.
# Canonical import site: repro.runtime.errors (docs/INTERNALS.md §5).
# --------------------------------------------------------------------------


class ReproRuntimeError(ReproError):
    """Common base of every error the runtime raises deliberately.

    The serving layer (:mod:`repro.serve`) catches exactly this: anything
    else escaping a session body is a bug in the application code, not a
    protocol failure for supervision to absorb.
    :class:`~repro.runtime.faults.InjectedFault` also derives from it, so
    chaos-harness crashes stay inside the same catchable hierarchy.
    """


class CompileError(ReproRuntimeError, ValueError):
    """Raised by the run-time compilation tier (commandification, step-function
    codegen, composition-mode/granularity selection) when something cannot be
    compiled *at run time*.

    Distinct from :class:`CompilationError`, which covers the front-end
    (text → AST → automata) pipeline: a :class:`CompileError` concerns the
    backend share that runs at connect/JIT time — an unknown composition
    mode, an unplannable constraint handed to the step compiler, a region
    over the step-compiler's budget.  The engine's compiled-tier fallback
    catches exactly this type and demotes the affected region to the
    interpretive engine (see docs/COMPILER.md).

    Also a :class:`ValueError`: these paths historically raised bare
    ``ValueError``s, and callers that caught those keep working.
    """


class RuntimeProtocolError(ReproRuntimeError):
    """Raised on protocol misuse at run time (e.g. port bound twice)."""


class DeadlockError(RuntimeProtocolError):
    """Raised when every registered task is blocked and no transition is enabled.

    ``diagnostic`` holds a multi-line dump of the engine's state at detection
    time (pending vertices per party, region states, recent trace events) —
    see :func:`repro.runtime.trace.render_deadlock_diagnostic`.
    """

    def __init__(self, message: str, diagnostic: str = ""):
        self.diagnostic = diagnostic
        if diagnostic:
            message = f"{message}\n{diagnostic}"
        super().__init__(message)


class PortClosedError(RuntimeProtocolError):
    """Raised by send/recv on a closed port, and delivered to blocked peers."""


class CheckpointError(RuntimeProtocolError):
    """Raised when a protocol checkpoint cannot be taken or restored.

    Checkpoints are only meaningful at *quiescent points* — no pending
    operations, no blocked parties, no closed vertices — and only between
    structurally compatible connector instances (same regions, same buffer
    signature).  Violating either constraint raises this error instead of
    silently corrupting protocol state.
    """


class DurabilityError(RuntimeProtocolError):
    """Raised when durable session state cannot be written or recovered.

    The durable store (:mod:`repro.runtime.durable`) keeps every session's
    checkpoints and write-ahead delivery journal on disk.  This error (and
    its subclasses) covers the failures of that layer: an unreadable state
    directory, a snapshot whose every generation is corrupt, a journal that
    cannot be appended to.  A *torn tail* on the newest journal is not an
    error — it is the expected signature of a crash mid-append and is
    silently truncated during recovery.
    """


class SnapshotCorruptError(DurabilityError):
    """A snapshot file failed its integrity checks: bad magic, a CRC32
    mismatch, undecodable record framing, or a missing end-of-snapshot
    trailer (a torn write).  Recovery quarantines the file (renames it with
    a ``.corrupt`` suffix) and falls back to the previous generation."""


class SchemaVersionError(DurabilityError):
    """A durable file declares a schema version this build does not know.

    Deliberately *not* treated as corruption: the file is intact but from
    the future, so recovery refuses to guess at its layout (and refuses to
    quarantine it) instead of mis-restoring protocol state.
    """

    def __init__(self, path: str, version: object, supported: int):
        self.path = path
        self.version = version
        self.supported = supported
        super().__init__(
            f"{path}: schema version {version!r} is not supported "
            f"(this build reads version <= {supported})"
        )


class ProtocolTimeoutError(RuntimeProtocolError, TimeoutError):
    """Raised when a blocking send/recv exceeds its timeout.

    The timed-out operation is withdrawn from the connector before this is
    raised, so a timeout never leaves a stale pending operation behind.
    Also a :class:`TimeoutError`, so generic timeout handling catches it.
    """

    def __init__(self, vertex: str, timeout: float, kind: str = "operation"):
        self.vertex = vertex
        self.timeout = timeout
        super().__init__(
            f"{kind} on vertex {vertex!r} timed out after {timeout}s"
        )


class OverloadError(RuntimeProtocolError):
    """Raised by a ``fail_fast`` overload policy when a vertex's pending-op
    queue is at its ``max_pending`` bound and the operation cannot complete
    immediately.

    Carries the vertex and the bound so callers can implement their own
    retry/shed strategy on top.  Never raised under the default ``block``
    policy — admission control is strictly opt-in.
    """

    def __init__(self, vertex: str, max_pending: int, message: str = ""):
        self.vertex = vertex
        self.max_pending = max_pending
        super().__init__(
            message
            or f"vertex {vertex!r} overloaded: {max_pending} pending "
            f"operation(s) already queued (fail_fast policy)"
        )


class StallError(RuntimeProtocolError):
    """The cause recorded when a watchdog quarantines a stalled or
    pathologically slow task: carries the task name and how long it failed
    to make protocol progress while its peers kept firing."""

    def __init__(self, task: str, waited: float, message: str = ""):
        self.task = task
        self.waited = waited
        super().__init__(
            message
            or f"task {task!r} stalled: no protocol progress for {waited:.3f}s "
            "while peers kept firing"
        )


class PeerFailedError(RuntimeProtocolError):
    """Delivered to tasks blocked on a connector when a supervised peer task
    died with an exception: carries the originating task's name and error so
    the survivor fails fast instead of hanging."""

    def __init__(self, task: str, cause: BaseException | None = None, message: str = ""):
        self.task = task
        self.cause = cause
        super().__init__(
            message or f"peer task {task!r} failed: {cause!r}"
        )
