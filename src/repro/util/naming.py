"""Stable fresh-name generation.

Flattening (§IV.C of the paper) inlines composite connector bodies, which
requires renaming their local variables to unique names: "their exact names
are immaterial, because their scope is local; only uniqueness matters".
:class:`FreshNames` produces deterministic unique names so that compilation
output is reproducible run to run (important for golden tests and codegen).
"""

from __future__ import annotations


def qualify(prefix: str, name: str) -> str:
    """Join a scope prefix and a local name with the reserved separator ``$``.

    ``$`` cannot appear in DSL identifiers, so qualified names never collide
    with user-written ones.
    """
    return f"{prefix}${name}" if prefix else name


class FreshNames:
    """Deterministic fresh-name supply, one counter per base name."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    def fresh(self, base: str) -> str:
        """Return ``base$k`` for the smallest unused ``k`` for this base."""
        k = self._counters.get(base, 0)
        self._counters[base] = k + 1
        return f"{base}${k}"

    def reset(self) -> None:
        self._counters.clear()
