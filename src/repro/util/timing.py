"""Timing helpers used by the benchmark harness.

The paper's first experiment series measures "the number of global execution
steps the connector made in four minutes" (§V.B); :class:`ThroughputMeter`
implements exactly that measurement at a configurable window length.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Monotonic stopwatch with lap support.

    >>> sw = Stopwatch().start()
    >>> elapsed = sw.stop()
    """

    def __init__(self) -> None:
        self._t0: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("stopwatch not started")
        self.elapsed += time.perf_counter() - self._t0
        self._t0 = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class ThroughputMeter:
    """Count events within a fixed wall-clock window.

    ``deadline_reached()`` is cheap enough to call on every event; it only
    reads the clock every ``check_every`` events.
    """

    def __init__(self, window_s: float, check_every: int = 64):
        self.window_s = window_s
        self.check_every = check_every
        self.count = 0
        self._t0 = time.perf_counter()
        self._deadline = self._t0 + window_s
        self._since_check = 0
        self._expired = False

    def tick(self, n: int = 1) -> None:
        self.count += n
        self._since_check += n

    def deadline_reached(self) -> bool:
        if self._expired:
            return True
        if self._since_check >= self.check_every:
            self._since_check = 0
            if time.perf_counter() >= self._deadline:
                self._expired = True
        return self._expired

    @property
    def rate(self) -> float:
        """Events per second over the elapsed portion of the window."""
        dt = time.perf_counter() - self._t0
        return self.count / dt if dt > 0 else 0.0
