"""Union-find (disjoint sets) over hashable elements.

Used by the constraint planner (equality propagation between data terms) and
by the partitioning analysis (grouping automata into synchronous regions).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict = {}
        self._size: dict = {}
        for e in elements:
            self.add(e)

    def add(self, e: Hashable) -> None:
        if e not in self._parent:
            self._parent[e] = e
            self._size[e] = 1

    def __contains__(self, e: Hashable) -> bool:
        return e in self._parent

    def find(self, e: Hashable):
        self.add(e)
        root = e
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[e] != root:  # path compression
            self._parent[e], e = root, self._parent[e]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def same(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> Iterator[frozenset]:
        """Yield the current partition as frozensets."""
        by_root: dict = {}
        for e in self._parent:
            by_root.setdefault(self.find(e), []).append(e)
        for members in by_root.values():
            yield frozenset(members)
