"""Reachability, deadlock detection, statistics, global index."""

from repro.automata.analysis import GlobalIndex, deadlock_states, explore, stats
from repro.automata.automaton import ConstraintAutomaton, Transition
from repro.automata.product import product
from repro.connectors.graph import Arc
from repro.connectors.primitives import build_automaton


def auto(n_states, transitions, initial=0, vertices=None):
    vs = vertices or {v for t in transitions for v in t.label}
    return ConstraintAutomaton(
        n_states, initial, frozenset(vs), tuple(transitions)
    )


def test_explore_reachable_only():
    a = auto(
        3,
        [Transition(0, frozenset({"x"}), 1)],
        vertices={"x"},
    )
    assert explore(a) == {0, 1}  # state 2 unreachable


def test_deadlock_states():
    a = auto(
        3,
        [
            Transition(0, frozenset({"x"}), 1),
            Transition(1, frozenset({"x"}), 2),
        ],
        vertices={"x"},
    )
    assert deadlock_states(a) == {2}


def test_no_deadlock_in_cyclic():
    a = auto(2, [
        Transition(0, frozenset({"x"}), 1),
        Transition(1, frozenset({"y"}), 0),
    ], vertices={"x", "y"})
    assert deadlock_states(a) == set()


def test_stats():
    a = auto(3, [
        Transition(0, frozenset({"x"}), 1),
        Transition(0, frozenset({"y"}), 1),
        Transition(1, frozenset({"x"}), 0),
    ], vertices={"x", "y"})
    s = stats(a)
    assert s.n_states == 3
    assert s.n_reachable == 2
    assert s.n_transitions == 3
    assert s.max_out_degree == 2
    assert s.n_vertices == 2


def test_global_index_by_vertex():
    f1 = build_automaton(Arc("fifo1", ("a",), ("b",)), "q1")
    f2 = build_automaton(Arc("fifo1", ("c",), ("d",)), "q2")
    large = product([f1, f2])
    idx = GlobalIndex(large)
    init = large.initial
    a_candidates = idx.candidates(init, "a")
    assert all("a" in t.label for t in a_candidates)
    assert len(a_candidates) == 1
    assert idx.candidates(init, "b") == ()  # empty fifo: no pop available


def test_global_index_internal_steps():
    f1 = build_automaton(Arc("fifo1", ("a",), ("b",)), "q1")
    f2 = build_automaton(Arc("fifo1", ("b",), ("c",)), "q2")
    large = product([f1, f2]).hide({"b"})
    idx = GlobalIndex(large)
    # the state with (full, empty) has an internal move b: label hidden
    has_internal = any(idx.internal[s] for s in range(large.n_states))
    assert has_internal
