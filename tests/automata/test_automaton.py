"""Constraint automata: construction, validation, renaming, hiding.

Includes the example automata of the paper's Fig. 7, built by hand.
"""

import pytest

from repro.automata.automaton import BufferSpec, ConstraintAutomaton, Transition
from repro.automata.constraint import Buf, Eq, Pop, Push, V
from repro.util.errors import WellFormednessError


def sync_automaton(a="v1", b="v2"):
    """Fig. 7(a): one state, one transition {v1; v2}."""
    return ConstraintAutomaton(
        n_states=1,
        initial=0,
        vertices=frozenset((a, b)),
        transitions=(Transition(0, frozenset((a, b)), 0, (Eq(V(a), V(b)),)),),
        name="sync",
    )


def fifo1_automaton(a="v1", b="v2", buf="q"):
    """Fig. 7(b): two states (empty/full), asynchronous transitions."""
    return ConstraintAutomaton(
        n_states=2,
        initial=0,
        vertices=frozenset((a, b)),
        transitions=(
            Transition(0, frozenset((a,)), 1, (), (Push(buf, V(a)),)),
            Transition(1, frozenset((b,)), 0, (Eq(V(b), Buf(buf)),), (Pop(buf),)),
        ),
        buffers=(BufferSpec(buf, capacity=1),),
        name="fifo1",
    )


def test_fig7_sync_shape():
    a = sync_automaton()
    assert a.n_states == 1
    assert len(a.transitions) == 1
    assert a.transitions[0].label == frozenset({"v1", "v2"})


def test_fig7_fifo1_shape():
    a = fifo1_automaton()
    assert a.n_states == 2
    labels = {t.label for t in a.transitions}
    assert labels == {frozenset({"v1"}), frozenset({"v2"})}


def test_outgoing_index():
    a = fifo1_automaton()
    assert [t.label for t in a.outgoing(0)] == [frozenset({"v1"})]
    assert [t.label for t in a.outgoing(1)] == [frozenset({"v2"})]


def test_rejects_bad_initial():
    with pytest.raises(WellFormednessError):
        ConstraintAutomaton(1, 5, frozenset(), ())


def test_rejects_out_of_range_transition():
    with pytest.raises(WellFormednessError):
        ConstraintAutomaton(
            1, 0, frozenset({"a"}), (Transition(0, frozenset({"a"}), 3),)
        )


def test_rejects_undeclared_vertex_in_label():
    with pytest.raises(WellFormednessError):
        ConstraintAutomaton(
            1, 0, frozenset({"a"}), (Transition(0, frozenset({"a", "b"}), 0),)
        )


def test_rejects_undeclared_buffer():
    with pytest.raises(WellFormednessError):
        ConstraintAutomaton(
            1,
            0,
            frozenset({"a"}),
            (Transition(0, frozenset({"a"}), 0, (), (Push("nosuch", V("a")),)),),
        )


def test_rejects_duplicate_buffers():
    with pytest.raises(WellFormednessError):
        ConstraintAutomaton(
            1, 0, frozenset(), (),
            buffers=(BufferSpec("q"), BufferSpec("q")),
        )


def test_renamed_vertices_and_buffers():
    a = fifo1_automaton()
    r = a.renamed({"v1": "x", "v2": "y"}, {"q": "p"})
    assert r.vertices == frozenset({"x", "y"})
    assert r.transitions[0].label == frozenset({"x"})
    assert r.transitions[0].effects == (Push("p", V("x")),)
    assert r.buffers[0].name == "p"
    # original untouched
    assert a.vertices == frozenset({"v1", "v2"})


def test_hide_removes_from_labels_not_constraints():
    a = sync_automaton()
    h = a.hide({"v1"})
    assert h.vertices == frozenset({"v2"})
    assert h.transitions[0].label == frozenset({"v2"})
    # the data constraint still mentions the hidden vertex (internal slot)
    assert h.transitions[0].atoms == (Eq(V("v1"), V("v2")),)


def test_hide_can_produce_internal_steps():
    a = sync_automaton()
    h = a.hide({"v1", "v2"})
    assert h.transitions[0].label == frozenset()


def test_buffer_map():
    a = fifo1_automaton()
    assert a.buffer_map["q"].capacity == 1
