"""Bisimulation: the DSL's binary-chain encodings are equivalent to the
n-ary primitives — proved exhaustively on the automata, not sampled."""

import pytest

from repro.automata.bisim import strongly_bisimilar, weakly_bisimilar
from repro.automata.product import product
from repro.compiler import compile_source
from repro.connectors.graph import Arc
from repro.connectors.library import dsl_source
from repro.connectors.primitives import build_automaton


def dsl_automaton(name: str, n: int, tails_formal, heads_formal):
    """The DSL connector's composed automaton with internals hidden and
    boundary vertices renamed to canonical names t1.., h1..."""
    program = compile_source(dsl_source(name, n))
    protocol = program.protocol(name)
    bindings = protocol.default_bindings(n)
    smalls = protocol.automata_for(bindings, granularity="small")
    large = product(smalls, state_budget=20_000)
    tails, heads = protocol.boundary_vertices(bindings)
    large = large.hide(large.vertices - set(tails) - set(heads))
    vmap = {v: f"t{i}" for i, v in enumerate(tails, 1)}
    vmap.update({v: f"h{i}" for i, v in enumerate(heads, 1)})
    return large.renamed(vmap)


def nary(type_: str, n: int, direction: str):
    if direction == "in":  # n tails, one head
        arc = Arc(type_, tuple(f"t{i}" for i in range(1, n + 1)), ("h1",))
    else:
        arc = Arc(type_, ("t1",), tuple(f"h{i}" for i in range(1, n + 1)))
    return build_automaton(arc, "q")


@pytest.mark.parametrize("n", [2, 3, 5])
def test_merger_chain_equals_nary(n):
    chain = dsl_automaton("Merger", n, "t", "h")
    assert strongly_bisimilar(chain, nary("merger", n, "in"))


@pytest.mark.parametrize("n", [2, 3, 5])
def test_replicator_chain_equals_nary(n):
    chain = dsl_automaton("Replicator", n, "t", "h")
    assert strongly_bisimilar(chain, nary("replicator", n, "out"))


@pytest.mark.parametrize("n", [2, 3, 5])
def test_router_chain_equals_nary(n):
    chain = dsl_automaton("Router", n, "t", "h")
    assert strongly_bisimilar(chain, nary("router", n, "out"))


def test_merger_not_bisimilar_to_router():
    """Sanity: different connectors are told apart."""
    m = nary("merger", 2, "in")
    r = nary("router", 2, "out")
    assert not strongly_bisimilar(m, r)


def test_capacity_is_observable():
    """fifo1 and a 2-fifo chain are NOT weakly bisimilar: the chain accepts
    two sends before any receive."""
    fifo1 = build_automaton(Arc("fifo1", ("a",), ("b",)), "q0")
    chain = product(
        [
            build_automaton(Arc("fifo1", ("a",), ("m",)), "q1"),
            build_automaton(Arc("fifo1", ("m",), ("b",)), "q2"),
        ]
    ).hide({"m"})
    assert not weakly_bisimilar(fifo1, chain)


def test_weak_bisim_ignores_internal_moves():
    """A fifo2 and a 2-fifo chain ARE weakly bisimilar: the chain's internal
    shift is unobservable."""
    fifo2 = build_automaton(
        Arc("fifon", ("a",), ("b",), (("capacity", 2),)), "q0"
    )
    chain = product(
        [
            build_automaton(Arc("fifo1", ("a",), ("m",)), "q1"),
            build_automaton(Arc("fifo1", ("m",), ("b",)), "q2"),
        ]
    ).hide({"m"})
    assert weakly_bisimilar(fifo2, chain)
    # ... but not strongly: the chain needs the internal step
    assert not strongly_bisimilar(fifo2, chain)


def test_sync_pipeline_strongly_equals_sync():
    """§III.C's motivating example, as a theorem: two syncs hidden in the
    middle are one sync."""
    one = build_automaton(Arc("sync", ("a",), ("b",)), "q")
    two = product(
        [
            build_automaton(Arc("sync", ("a",), ("m",)), "q1"),
            build_automaton(Arc("sync", ("m",), ("b",)), "q2"),
        ]
    ).hide({"m"})
    assert strongly_bisimilar(one, two)


def test_reflexivity_and_symmetry():
    a = nary("merger", 3, "in")
    assert strongly_bisimilar(a, a)
    b = dsl_automaton("Merger", 3, "t", "h")
    assert strongly_bisimilar(a, b) == strongly_bisimilar(b, a)
