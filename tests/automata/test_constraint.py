"""Data-constraint terms/atoms: renaming, hashability, registry."""

import pytest

from repro.automata.constraint import (
    App,
    Buf,
    Const,
    DEFAULT_REGISTRY,
    Eq,
    FunctionRegistry,
    NotEmpty,
    NotFull,
    Pop,
    Pred,
    Push,
    V,
    rename_atom,
    rename_effect,
    rename_term,
    term_buffers,
    term_vertices,
)


def test_terms_hashable_and_equal():
    assert V("a") == V("a")
    assert hash(Eq(V("a"), Buf("q"))) == hash(Eq(V("a"), Buf("q")))
    assert App("f", V("a")) != App("g", V("a"))


def test_rename_term_nested():
    t = App("f", App("g", V("x")))
    renamed = rename_term(t, {"x": "y"}, {})
    assert renamed == App("f", App("g", V("y")))


def test_rename_term_buffer():
    assert rename_term(Buf("q"), {}, {"q": "p"}) == Buf("p")
    assert rename_term(Const(3), {"x": "y"}, {}) == Const(3)


def test_rename_atom_all_kinds():
    vmap, bmap = {"a": "A"}, {"q": "Q"}
    assert rename_atom(Eq(V("a"), Buf("q")), vmap, bmap) == Eq(V("A"), Buf("Q"))
    assert rename_atom(Pred("p", V("a"), True), vmap, bmap) == Pred("p", V("A"), True)
    assert rename_atom(NotFull("q"), vmap, bmap) == NotFull("Q")
    assert rename_atom(NotEmpty("q"), vmap, bmap) == NotEmpty("Q")


def test_rename_effect():
    assert rename_effect(Push("q", V("a")), {"a": "b"}, {"q": "p"}) == Push("p", V("b"))
    assert rename_effect(Pop("q"), {}, {"q": "p"}) == Pop("p")


def test_term_vertices_and_buffers():
    t = App("f", V("x"))
    assert term_vertices(t) == frozenset({"x"})
    assert term_buffers(t) == frozenset()
    assert term_buffers(App("f", Buf("q"))) == frozenset({"q"})
    assert term_vertices(Const(0)) == frozenset()


def test_registry_lookup_and_missing():
    reg = FunctionRegistry()
    reg.register_function("inc", lambda x: x + 1)
    reg.register_predicate("even", lambda x: x % 2 == 0)
    assert reg.function("inc")(1) == 2
    assert reg.predicate("even")(4)
    with pytest.raises(KeyError):
        reg.function("nope")
    with pytest.raises(KeyError):
        reg.predicate("nope")


def test_registry_merge():
    a = FunctionRegistry()
    a.register_function("f", lambda x: 1)
    b = FunctionRegistry()
    b.register_function("f", lambda x: 2)
    b.register_predicate("p", lambda x: True)
    merged = a.merged_with(b)
    assert merged.function("f")(0) == 2  # other wins
    assert merged.predicate("p")(0)
    # originals untouched
    assert a.function("f")(0) == 1


def test_default_registry_has_identity():
    assert DEFAULT_REGISTRY.function("identity")(7) == 7
    assert DEFAULT_REGISTRY.predicate("true")(None)
    assert not DEFAULT_REGISTRY.predicate("false")(None)
