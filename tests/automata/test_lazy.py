"""Just-in-time product and the bounded state caches (§IV.D, §V.B)."""

import pytest

from repro.automata.lazy import FIFOCache, LazyProduct, LRUCache, RandomCache, UnboundedCache
from repro.automata.product import compose_outgoing, product
from repro.connectors.graph import Arc
from repro.connectors.primitives import build_automaton


def prim(type_, tails, heads, buf="q", **params):
    return build_automaton(
        Arc(type_, tuple(tails), tuple(heads), tuple(sorted(params.items()))), buf
    )


def fifo_chain(k):
    return [
        prim("fifo1", [f"x{i}"], [f"x{i + 1}"], buf=f"q{i}") for i in range(k)
    ]


def test_initial_state_expanded_up_front():
    lp = LazyProduct(fifo_chain(3))
    assert lp.expansions == 1
    assert lp.initial == (0, 0, 0)


def test_lazy_matches_eager_on_reachable_fragment():
    autos = fifo_chain(4)
    eager = product(autos)
    lp = LazyProduct(autos)
    # BFS over the lazy product, compare reachable state/step counts
    seen = {lp.initial}
    frontier = [lp.initial]
    n_steps = 0
    while frontier:
        s = frontier.pop()
        for step in lp.outgoing(s):
            n_steps += 1
            t = step.successor(s)
            if t not in seen:
                seen.add(t)
                frontier.append(t)
    assert len(seen) == eager.n_states
    assert n_steps == len(eager.transitions)


def test_expansions_cached():
    lp = LazyProduct(fifo_chain(2))
    s = lp.initial
    lp.outgoing(s)
    lp.outgoing(s)
    assert lp.expansions == 1
    assert lp.cache.hits >= 1


def test_bounded_cache_evicts_and_recomputes():
    lp = LazyProduct(fifo_chain(4), cache=LRUCache(2))
    # walk enough distinct states to force evictions
    states = [lp.initial]
    s = lp.initial
    for _ in range(6):
        steps = lp.outgoing(s)
        s = steps[0].successor(s)
        states.append(s)
    assert lp.cache.evictions > 0
    assert len(lp.cache) <= 2
    before = lp.expansions
    lp.outgoing(states[0])  # evicted: must recompute
    assert lp.expansions == before + 1


def test_lru_prefers_recent():
    c = LRUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1  # refresh a
    c.put("c", 3)  # evicts b
    assert c.get("b") is None
    assert c.get("a") == 1


def test_fifo_evicts_oldest_even_if_hot():
    c = FIFOCache(2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1  # hot, but FIFO ignores recency
    c.put("c", 3)  # evicts a
    assert c.get("a") is None
    assert c.get("b") == 2


def test_random_cache_seeded_deterministic():
    def run():
        c = RandomCache(2, seed=7)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        return {k for k in "abc" if c.get(k) is not None}

    assert run() == run()
    assert len(run()) == 2


def test_cache_capacity_validation():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_unbounded_cache_counts():
    c = UnboundedCache()
    assert c.get("x") is None
    c.put("x", 1)
    assert c.get("x") == 1
    assert (c.hits, c.misses, c.evictions) == (1, 1, 0)


def test_lazy_equivalent_steps_to_compose_outgoing():
    autos = fifo_chain(3)
    lp = LazyProduct(autos)
    direct = compose_outgoing(autos, lp.initial)
    via = lp.outgoing(lp.initial)
    assert {s.label for s in direct} == {s.label for s in via}
