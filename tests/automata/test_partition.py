"""The ref-[32] partitioning optimization: decoupling and regioning."""

from repro.automata.partition import decoupled_form, partition_automata
from repro.connectors.graph import Arc
from repro.connectors.primitives import build_automaton


def prim(type_, tails, heads, buf, **params):
    return build_automaton(
        Arc(type_, tuple(tails), tuple(heads), tuple(sorted(params.items()))), buf
    )


def test_fifo_has_decoupled_form():
    f = prim("fifo1", ["a"], ["b"], "q")
    halves = decoupled_form(f)
    assert halves is not None
    writer, reader = halves
    assert writer.vertices == frozenset({"a"})
    assert reader.vertices == frozenset({"b"})
    # the halves share only the buffer
    assert writer.buffers == reader.buffers


def test_sync_not_decouplable():
    s = prim("sync", ["a"], ["b"], "q")
    assert decoupled_form(s) is None


def test_partition_splits_at_fifo():
    """sync - fifo - sync: the fifo decouples into two single-vertex halves,
    so the sync on each side lands in its own region."""
    s1 = prim("sync", ["a"], ["b"], "_")
    f = prim("fifo1", ["b"], ["c"], "q")
    s2 = prim("sync", ["c"], ["d"], "_")
    regions = partition_automata([s1, f, s2])
    assert len(regions) == 2
    sizes = sorted(len(r) for r in regions)
    assert sizes == [2, 2]  # {sync, writer-half} and {reader-half, sync}


def test_partition_without_decoupling_keeps_connected():
    s1 = prim("sync", ["a"], ["b"], "_")
    f = prim("fifo1", ["b"], ["c"], "q")
    s2 = prim("sync", ["c"], ["d"], "_")
    regions = partition_automata([s1, f, s2], decouple=False)
    assert len(regions) == 1


def test_partition_independent_components():
    s1 = prim("sync", ["a"], ["b"], "_")
    s2 = prim("sync", ["x"], ["y"], "_")
    regions = partition_automata([s1, s2])
    assert len(regions) == 2


def test_partition_sync_region_stays_together():
    """Purely synchronous chains cannot be split."""
    chain = [
        prim("sync", [f"v{i}"], [f"v{i + 1}"], "_") for i in range(5)
    ]
    regions = partition_automata(chain)
    assert len(regions) == 1
    assert len(regions[0]) == 5


def test_fifo_chain_fully_decouples():
    """A fifo chain of length k splits into k+1... actually 2k halves that
    pair up into k regions? No: halves of adjacent fifos share their middle
    vertex, so the chain splits into k+1 single-automaton regions minus
    pairing — verify the important property: region count grows with k."""
    k = 4
    chain = [prim("fifo1", [f"x{i}"], [f"x{i + 1}"], f"q{i}") for i in range(k)]
    regions = partition_automata(chain)
    # writer(x0) | reader(x1)+writer(x1) | ... | reader(x4) => k+1 regions
    assert len(regions) == k + 1


def test_region_order_deterministic():
    s1 = prim("sync", ["a"], ["b"], "_")
    s2 = prim("sync", ["x"], ["y"], "_")
    r1 = partition_automata([s1, s2])
    r2 = partition_automata([s1, s2])
    assert [sorted(a.name for a in reg) for reg in r1] == [
        sorted(a.name for a in reg) for reg in r2
    ]
