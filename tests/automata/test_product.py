"""Synchronous product (Eq. 1): agreement rule, minimal vs maximal modes,
budget enforcement, and the paper's Fig. 7(f) example."""

import pytest

from repro.automata.automaton import ConstraintAutomaton, Transition
from repro.automata.constraint import Eq, V
from repro.automata.product import compose_outgoing, merged_buffers, product
from repro.connectors.graph import Arc
from repro.connectors.primitives import build_automaton
from repro.util.errors import CompilationBudgetExceeded, WellFormednessError


def prim(type_, tails, heads, buf="q", **params):
    return build_automaton(
        Arc(type_, tuple(tails), tuple(heads), tuple(sorted(params.items()))), buf
    )


def test_sync_pipeline_composes_to_sync():
    """§III.C: 'the pipeline composition of two sync channels should behave
    as a sync channel' — one global step moving data a -> c."""
    s1 = prim("sync", ["a"], ["b"])
    s2 = prim("sync", ["b"], ["c"])
    p = product([s1, s2])
    assert p.n_states == 1
    assert len(p.transitions) == 1
    assert p.transitions[0].label == frozenset({"a", "b", "c"})


def test_fig7f_running_example_states():
    """Fig. 7(f): the product of the Ex. 1 connector has 4 control states
    (two independent fifo1s; the seq2s constrain transitions, not states)."""
    from repro.connectors.library import sequenced_merger
    from repro.compiler.fromgraph import compile_graph

    built = sequenced_merger(2)
    smalls = compile_graph(built)
    large = product(smalls)
    # reachable control states: fifo occupancy (2x2) x seq positions (2x2),
    # restricted by reachability; the initial protocol admits 4 states.
    assert large.n_states == 4


def test_shared_vertex_agreement():
    """A transition involving a shared vertex fires iff its partner fires
    a transition with the same shared vertex."""
    s1 = prim("sync", ["a"], ["b"])
    f1 = prim("fifo1", ["b"], ["c"], buf="q1")
    p = product([s1, f1])
    # initial state: only the joint {a,b} push step
    initial_labels = {t.label for t in p.outgoing(p.initial)}
    assert initial_labels == {frozenset({"a", "b"})}


def test_independent_transitions_interleave_minimal():
    f1 = prim("fifo1", ["a"], ["b"], buf="q1")
    f2 = prim("fifo1", ["c"], ["d"], buf="q2")
    steps = compose_outgoing([f1, f2], [0, 0], mode="minimal")
    labels = {s.label for s in steps}
    assert labels == {frozenset({"a"}), frozenset({"c"})}


def test_independent_transitions_joint_in_maximal():
    """The textbook product also contains the joint firing — the source of
    the per-state exponential blow-up of §V.C point 3."""
    f1 = prim("fifo1", ["a"], ["b"], buf="q1")
    f2 = prim("fifo1", ["c"], ["d"], buf="q2")
    steps = compose_outgoing([f1, f2], [0, 0], mode="maximal")
    labels = {s.label for s in steps}
    assert labels == {
        frozenset({"a"}),
        frozenset({"c"}),
        frozenset({"a", "c"}),
    }


def test_maximal_transition_count_exponential():
    k = 6
    fifos = [prim("fifo1", [f"a{i}"], [f"b{i}"], buf=f"q{i}") for i in range(k)]
    steps = compose_outgoing(fifos, [0] * k, mode="maximal")
    assert len(steps) == 2**k - 1
    minimal = compose_outgoing(fifos, [0] * k, mode="minimal")
    assert len(minimal) == k


def test_state_budget_enforced():
    fifos = [prim("fifo1", [f"a{i}"], [f"b{i}"], buf=f"q{i}") for i in range(8)]
    with pytest.raises(CompilationBudgetExceeded):
        product(fifos, state_budget=10)


def test_time_budget_enforced():
    fifos = [prim("fifo1", [f"a{i}"], [f"b{i}"], buf=f"q{i}") for i in range(14)]
    with pytest.raises(CompilationBudgetExceeded):
        product(fifos, state_budget=None, time_budget_s=0.05)


def test_product_reachable_only():
    """Only states reachable from the joint initial state are built."""
    f1 = prim("fifo1", ["a"], ["b"], buf="q1")
    f2 = prim("fifo1", ["b"], ["c"], buf="q2")
    p = product([f1, f2])
    # 4 combinations minus the unreachable? all 4 are reachable here:
    # (e,e) -a-> (f,e) -tau-> (e,f) -a-> (f,f)
    assert p.n_states == 4


def test_empty_composition_rejected():
    with pytest.raises(WellFormednessError):
        product([])


def test_single_automaton_returned_as_is():
    f1 = prim("fifo1", ["a"], ["b"], buf="q1")
    assert product([f1]) is f1


def test_merged_buffers_conflict():
    f1 = prim("fifo1", ["a"], ["b"], buf="q")
    f2 = prim("fifon", ["c"], ["d"], buf="q", capacity=3)
    with pytest.raises(WellFormednessError):
        merged_buffers([f1, f2])


def test_merged_buffers_same_spec_ok():
    f1 = prim("fifo1", ["a"], ["b"], buf="q")
    halves = f1.meta["decoupled"]
    assert len(merged_buffers(list(halves))) == 1


def test_atoms_and_effects_concatenate():
    s1 = prim("sync", ["a"], ["b"])
    s2 = prim("sync", ["b"], ["c"])
    p = product([s1, s2])
    t = p.transitions[0]
    assert Eq(V("a"), V("b")) in t.atoms
    assert Eq(V("b"), V("c")) in t.atoms


def test_unknown_mode_rejected():
    s1 = prim("sync", ["a"], ["b"])
    s2 = prim("sync", ["b"], ["c"])
    with pytest.raises(ValueError):
        compose_outgoing([s1, s2], [0, 0], mode="bogus")
