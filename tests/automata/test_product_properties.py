"""Property-based tests of the product (hypothesis).

The key algebraic facts the compiler relies on (§III.A/§IV.C): composition
is associative and commutative up to state renaming, and the lazy product
agrees with the eager product on the reachable fragment — for *arbitrary*
small automata, not just the library's.
"""

from hypothesis import given, settings, strategies as st

from repro.automata.automaton import ConstraintAutomaton, Transition
from repro.automata.lazy import LazyProduct
from repro.automata.product import product

# A small universe of vertex names; overlap between automata is what makes
# composition interesting.
VERTICES = ["a", "b", "c", "d", "e"]


@st.composite
def automata(draw):
    n_states = draw(st.integers(1, 3))
    initial = draw(st.integers(0, n_states - 1))
    vertices = draw(st.sets(st.sampled_from(VERTICES), min_size=1, max_size=3))
    n_trans = draw(st.integers(0, 4))
    transitions = []
    for _ in range(n_trans):
        src = draw(st.integers(0, n_states - 1))
        tgt = draw(st.integers(0, n_states - 1))
        label = draw(
            st.sets(st.sampled_from(sorted(vertices)), min_size=1, max_size=2)
        )
        transitions.append(Transition(src, frozenset(label), tgt))
    return ConstraintAutomaton(
        n_states, initial, frozenset(vertices), tuple(transitions)
    )


def canonical_traces(auto: ConstraintAutomaton, depth: int = 4) -> frozenset:
    """The set of label sequences of length <= depth from the initial state.

    Trace sets are invariant under state renaming, so they witness
    behavioural agreement between differently-shaped products.
    """
    out = set()

    def walk(state, prefix):
        out.add(tuple(prefix))
        if len(prefix) == depth:
            return
        for t in auto.outgoing(state):
            walk(t.target, prefix + [tuple(sorted(t.label))])

    walk(auto.initial, [])
    return frozenset(out)


def lazy_traces(automata_list, depth: int = 4) -> frozenset:
    lp = LazyProduct(automata_list)
    out = set()

    def walk(state, prefix):
        out.add(tuple(prefix))
        if len(prefix) == depth:
            return
        for step in lp.outgoing(state):
            walk(step.successor(state), prefix + [tuple(sorted(step.label))])

    walk(lp.initial, [])
    return frozenset(out)


@settings(max_examples=60, deadline=None)
@given(automata(), automata())
def test_product_commutative_up_to_traces(a1, a2):
    p12 = product([a1, a2], state_budget=2000)
    p21 = product([a2, a1], state_budget=2000)
    assert canonical_traces(p12) == canonical_traces(p21)


@settings(max_examples=40, deadline=None)
@given(automata(), automata(), automata())
def test_maximal_product_associative_up_to_traces(a1, a2, a3):
    """The textbook (maximal) product is associative — this is what licenses
    composing medium-automaton templates at compile time and composing the
    mediums again at run time (§IV.C/D)."""
    kw = dict(mode="maximal", state_budget=2000)
    left = product([product([a1, a2], **kw), a3], **kw)
    right = product([a1, product([a2, a3], **kw)], **kw)
    flat = product([a1, a2, a3], **kw)
    assert canonical_traces(left) == canonical_traces(flat)
    assert canonical_traces(right) == canonical_traces(flat)


@settings(max_examples=40, deadline=None)
@given(automata(), automata(), automata())
def test_maximal_inner_minimal_outer_bracketing(a1, a2, a3):
    """The compiler's actual composition discipline: inner groups composed
    in maximal mode, the final run-time composition in minimal mode.  Its
    behaviour is bracketed between the flat minimal product (it can do
    everything interleaving can) and the flat maximal product (it invents
    nothing beyond the textbook semantics).  (Minimal-in-minimal would not
    even satisfy the lower bound: an outer synchronization can force a
    joint step of two inner-independent transitions, which minimal inner
    composition lacks.)"""
    kw_max = dict(mode="maximal", state_budget=2000)
    inner = product([a1, a2], **kw_max)
    nested = product([inner, a3], mode="minimal", state_budget=2000)
    flat_min = product([a1, a2, a3], mode="minimal", state_budget=2000)
    flat_max = product([a1, a2, a3], mode="maximal", state_budget=2000)
    t_nested = canonical_traces(nested)
    assert canonical_traces(flat_min) <= t_nested
    assert t_nested <= canonical_traces(flat_max)


@settings(max_examples=60, deadline=None)
@given(st.lists(automata(), min_size=2, max_size=3))
def test_lazy_agrees_with_eager(autos):
    eager = product(autos, state_budget=2000)
    assert canonical_traces(eager) == lazy_traces(autos)


@settings(max_examples=60, deadline=None)
@given(automata(), automata())
def test_maximal_traces_contain_minimal(a1, a2):
    """Every minimal-mode behaviour is also a maximal-mode behaviour."""
    minimal = product([a1, a2], mode="minimal", state_budget=2000)
    maximal = product([a1, a2], mode="maximal", state_budget=2000)
    # each single minimal step exists among maximal steps of the same state
    min_labels = {(t.source, t.label) for t in minimal.transitions}
    # maximal states are a superset tuple-indexed differently; compare from
    # the initial state only (states are both BFS-numbered from init=0)
    init_min = {t.label for t in minimal.outgoing(0)}
    init_max = {t.label for t in maximal.outgoing(0)}
    assert init_min <= init_max
    assert min_labels  is not None
