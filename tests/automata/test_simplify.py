"""Commandification: firing plans for representative transition constraints."""

import pytest

from repro.automata.constraint import (
    App,
    Buf,
    Const,
    Eq,
    FunctionRegistry,
    NotEmpty,
    NotFull,
    Pop,
    Pred,
    Push,
    V,
)
from repro.automata.automaton import BufferSpec
from repro.automata.simplify import commandify
from repro.runtime.buffers import BufferStore
from repro.util.errors import ConstraintError


REG = FunctionRegistry()
REG.register_function("inc", lambda x: x + 1)
REG.register_predicate("even", lambda x: x % 2 == 0)


def plan_for(label, atoms=(), effects=(), sources=frozenset(), sinks=frozenset()):
    return commandify(
        frozenset(label), tuple(atoms), tuple(effects),
        frozenset(sources), frozenset(sinks), REG,
    )


def store(**buffers):
    s = BufferStore()
    for name, (cap, init) in buffers.items():
        s.declare(BufferSpec(name, capacity=cap, initial=tuple(init)))
    return s


def test_sync_delivery():
    """sync(a;b): b receives exactly the value sent on a."""
    p = plan_for({"a", "b"}, [Eq(V("a"), V("b"))], sources={"a"}, sinks={"b"})
    slots = p.evaluate({"a": 42}, store())
    assert slots is not None
    assert p.commit(store(), slots) == {"b": 42}


def test_transform_applies_function():
    p = plan_for(
        {"a", "b"}, [Eq(V("b"), App("inc", V("a")))], sources={"a"}, sinks={"b"}
    )
    slots = p.evaluate({"a": 41}, store())
    assert p.commit(store(), slots) == {"b": 42}


def test_filter_predicate_pass_and_block():
    p = plan_for(
        {"a", "b"},
        [Pred("even", V("a")), Eq(V("a"), V("b"))],
        sources={"a"},
        sinks={"b"},
    )
    assert p.evaluate({"a": 2}, store()) is not None
    assert p.evaluate({"a": 3}, store()) is None


def test_negated_predicate():
    p = plan_for({"a"}, [Pred("even", V("a"), negate=True)], sources={"a"})
    assert p.evaluate({"a": 3}, store()) is not None
    assert p.evaluate({"a": 2}, store()) is None


def test_fifo_push_guarded_by_capacity():
    p = plan_for({"a"}, [NotFull("q")], [Push("q", V("a"))], sources={"a"})
    s = store(q=(1, []))
    slots = p.evaluate({"a": "m"}, s)
    p.commit(s, slots)
    assert s.snapshot()["q"] == ("m",)
    # full now
    assert p.evaluate({"a": "m2"}, s) is None


def test_fifo_pop_delivers_front():
    p = plan_for(
        {"b"}, [NotEmpty("q"), Eq(V("b"), Buf("q"))], [Pop("q")], sinks={"b"}
    )
    s = store(q=(2, ["x", "y"]))
    slots = p.evaluate({}, s)
    assert p.commit(s, slots) == {"b": "x"}
    assert s.snapshot()["q"] == ("y",)


def test_peek_implies_not_empty_guard():
    p = plan_for({"b"}, [Eq(V("b"), Buf("q"))], [Pop("q")], sinks={"b"})
    assert p.evaluate({}, store(q=(1, []))) is None


def test_equality_chain_through_internal_vertex():
    """merger-then-sync: value flows a -> m -> b with m internal."""
    p = plan_for(
        {"a", "m", "b"},
        [Eq(V("a"), V("m")), Eq(V("m"), V("b"))],
        sources={"a"},
        sinks={"b"},
    )
    slots = p.evaluate({"a": 9}, store())
    assert p.commit(store(), slots) == {"b": 9}


def test_two_sources_must_agree():
    """An equality between two task-sent values becomes a runtime check."""
    p = plan_for(
        {"a", "b"}, [Eq(V("a"), V("b"))], sources={"a", "b"}
    )
    assert p.evaluate({"a": 1, "b": 1}, store()) is not None
    assert p.evaluate({"a": 1, "b": 2}, store()) is None


def test_statically_false_constraint():
    p = plan_for({"a"}, [Eq(Const(1), Const(2))], sources={"a"})
    assert p.never
    assert p.evaluate({"a": 0}, store()) is None


def test_spout_delivers_none():
    p = plan_for({"b1", "b2"}, sinks={"b1", "b2"})
    slots = p.evaluate({}, store())
    assert p.commit(store(), slots) == {"b1": None, "b2": None}


def test_undetermined_push_rejected():
    with pytest.raises(ConstraintError):
        plan_for({"a"}, [], [Push("q", V("z"))], sources={"a"})


def test_undetermined_predicate_rejected():
    with pytest.raises(ConstraintError):
        plan_for({"a"}, [Pred("even", V("z"))], sources={"a"})


def test_evaluate_does_not_mutate():
    p = plan_for(
        {"b"}, [NotEmpty("q"), Eq(V("b"), Buf("q"))], [Pop("q")], sinks={"b"}
    )
    s = store(q=(1, ["v"]))
    p.evaluate({}, s)
    p.evaluate({}, s)
    assert s.snapshot()["q"] == ("v",)


def test_const_equality_delivery():
    p = plan_for({"b"}, [Eq(V("b"), Const("tok"))], sinks={"b"})
    slots = p.evaluate({}, store())
    assert p.commit(store(), slots) == {"b": "tok"}


def test_function_check_on_resolved_class():
    """f(x) == y with both x and y known becomes a runtime consistency check."""
    p = plan_for(
        {"a", "b"},
        [Eq(V("b"), App("inc", V("a")))],
        sources={"a", "b"},
    )
    assert p.evaluate({"a": 1, "b": 2}, store()) is not None
    assert p.evaluate({"a": 1, "b": 5}, store()) is None
