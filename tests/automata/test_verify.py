"""Compile-time verification: deadlock freedom, dead ports, reporting."""

import pytest

from repro.automata.verify import verify_protocol
from repro.compiler import compile_source
from repro.connectors import library


def protocol_of(source, name=None):
    return compile_source(source).protocol(name)


def test_healthy_protocol_verifies(fig9_source):
    protocol = protocol_of(fig9_source, "ConnectorEx11N")
    for n in (1, 2, 4):
        report = verify_protocol(protocol, sizes=n)
        assert report.ok, report.render()
        assert report.n_states > 0
        assert report.exhaustive


@pytest.mark.parametrize("name", ["Merger", "Sequencer", "Alternator",
                                  "Lock", "SequencedMerger"])
def test_library_connectors_verify(name):
    from repro.compiler import compile_source as cs

    program = cs(library.dsl_source(name, 3))
    report = verify_protocol(program.protocol(name), sizes=3)
    assert report.ok, report.render()


def test_structural_deadlock_detected():
    """A seq2 whose second step can never be re-enabled... build a protocol
    that genuinely wedges: two seqs demanding opposite orders of a and b."""
    source = """
Wedge(a,b;) =
  Repl2(a;x1,x2) mult Repl2(b;y1,y2)
  mult Seq2(x1,y1;) mult Seq2(y2,x2;)
"""
    # firing a needs (x1,x2): seq1 wants x1 first, seq2 wants y2 first ->
    # a needs x2 which seq2 only enables after y2, i.e. after b; firing b
    # needs y1, which seq1 only enables after x1, i.e. after a.  Stuck, but
    # *as absence of enabled boundary behaviour*, not a stuck state: the
    # initial state simply has no outgoing transitions at all.
    protocol = protocol_of(source, "Wedge")
    report = verify_protocol(protocol)
    assert not report.ok
    kinds = {f.check for f in report.findings if f.kind == "error"}
    assert "structural-deadlock" in kinds or "dead-port" in kinds


def test_unplannable_transition_detected():
    """A protocol with a vertex nothing ever writes: the fifo feeding ``c``
    would have to buffer a value with no source — caught at verification
    time as an unplannable transition."""
    source = """
Dead(a;b,c) =
  Sync(a;b) mult Fifo1(z;c)
"""
    protocol = protocol_of(source, "Dead")
    report = verify_protocol(protocol)
    assert not report.ok
    assert any(f.check == "unplannable-transition" for f in report.findings)


def test_dead_port_detected():
    """The canonical wiring mistake: a boundary parameter the body never
    uses — operations on it can never complete."""
    source = "Dead2(a,b;c) = Sync(a;c)"
    protocol = protocol_of(source, "Dead2")
    report = verify_protocol(protocol)
    assert not report.ok
    finding = next(f for f in report.findings if f.check == "dead-port")
    assert "b" in finding.message


def test_budget_produces_warning_not_crash():
    program = compile_source(library.dsl_source("EarlyAsyncMerger"))
    report = verify_protocol(
        program.protocol("EarlyAsyncMerger"), sizes=14, state_budget=100
    )
    assert not report.exhaustive
    assert report.ok  # no *errors*, only the budget warning
    assert any(f.check == "state-space" and f.kind == "warning"
               for f in report.findings)


def test_report_rendering(fig9_source):
    protocol = protocol_of(fig9_source, "ConnectorEx11N")
    report = verify_protocol(protocol, sizes=2)
    text = report.render()
    assert "ConnectorEx11N" in text and "states" in text
