"""Fig. 12 runner: classification logic and report rendering (tiny runs)."""

from repro.bench.fig12 import BINS, Fig12Report, classify, run_fig12
from repro.bench.harness import ThroughputSample


def s(rate, failed=False):
    sample = ThroughputSample(steps=int(rate), window_s=1.0, setup_s=0.0,
                              failed=failed, failure="X" if failed else "")
    return sample


def test_classify_bins():
    assert classify(s(100), s(0, failed=True)) == "fail"
    assert classify(s(100), s(90)) == "new"
    assert classify(s(100), s(100)) == "new"  # ties go to the new approach
    assert classify(s(100), s(500)) == "ex10"
    assert classify(s(1), s(5000)) == "ex100"


def test_report_counts_and_pie():
    report = run_fig12(
        names=("Replicator", "SequencedMerger"),
        ns=(2, 4),
        window_s=0.05,
        state_budget=20_000,
        compile_time_budget_s=2.0,
    )
    assert len(report.cells) == 4
    counts = report.counts_by_n()
    assert set(counts) == {2, 4}
    assert all(sum(c.values()) == 2 for c in counts.values())
    pie = report.pie()
    assert abs(sum(pie.values()) - 100.0) < 1e-9
    text = report.render(detail=True)
    assert "Bar chart" in text and "Pie chart" in text
    assert "Replicator" in text


def test_existing_fails_at_large_n_for_exponential_connector():
    report = run_fig12(
        names=("EarlyAsyncMerger",),
        ns=(2, 16),
        window_s=0.05,
        state_budget=1000,
        compile_time_budget_s=1.0,
    )
    by_n = {c.n: c for c in report.cells}
    assert not by_n[2].existing.failed
    assert by_n[16].existing.failed
    assert by_n[16].bin == "fail"


def test_bins_constant():
    assert BINS == ("fail", "new", "ex10", "ex100")
