"""Fig. 13 runner: result structure and rendering (class S, tiny N)."""

from repro.bench.fig13 import render, run_fig13


def test_runs_and_verifies():
    results = run_fig13(
        programs=("cg",), classes=("S",), ns=(2,), repeats=1
    )
    rows = results[("cg", "S")]
    assert len(rows) == 1
    n, t_orig, t_reo, ok = rows[0]
    assert n == 2 and ok
    assert t_orig > 0 and t_reo > 0


def test_render():
    results = run_fig13(programs=("lu",), classes=("S",), ns=(2,))
    text = render(results)
    assert "LU, size S" in text
    assert "original(s)" in text
    assert "OK" in text


def test_partitioned_variant():
    results = run_fig13(
        programs=("cg",), classes=("S",), ns=(2,), use_partitioning=True
    )
    assert results[("cg", "S")][0][3]  # verified
