"""Throughput harness: sampling, failure capture, setup accounting."""

from repro.bench.harness import drive_connector
from repro.connectors import library


def test_drive_counts_steps():
    sample = drive_connector(
        lambda: library.connector("Replicator", 2), window_s=0.1
    )
    assert not sample.failed
    assert sample.steps > 0
    assert sample.rate > 0
    assert sample.window_s >= 0.05


def test_drive_captures_compile_failure():
    from repro.compiler import compile_existing

    def make():
        compiled = compile_existing(
            library.dsl_source("EarlyAsyncMerger"),
            "EarlyAsyncMerger",
            sizes=10,
            state_budget=50,
        )
        return compiled.instantiate_connector()

    sample = drive_connector(make, window_s=0.05)
    assert sample.failed
    assert "CompilationBudgetExceeded" in sample.failure
    assert sample.steps == 0


def test_steady_mode_excludes_setup():
    sample = drive_connector(
        lambda: library.connector("Merger", 2),
        window_s=0.1,
        include_setup=False,
    )
    assert not sample.failed
    assert sample.steps > 0
