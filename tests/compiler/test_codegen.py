"""Python code generation (Fig. 10): generated modules import and run."""

import types

import pytest

from repro.compiler import compile_source, generate_python

from tests.conftest import pump


def load(src: str):
    mod = types.ModuleType("generated")
    exec(compile(src, "<generated>", "exec"), mod.__dict__)
    return mod


def gen(source: str, name: str):
    return load(generate_python(compile_source(source).protocol(name)))


def test_generated_module_structure(fig9_source):
    src = generate_python(compile_source(fig9_source).protocol("ConnectorEx11N"))
    assert "do not edit" in src
    assert "def build_automata" in src
    assert "def make_connector" in src
    # conditionals and loops mirror Fig. 10's connect method
    assert "if " in src and "for " in src
    mod = load(src)
    assert mod.PROTOCOL_NAME == "ConnectorEx11N"
    assert mod.TAIL_PARAMS == [("tl", True)]


def test_generated_counts_match_interpreter(fig9_source):
    compiled = compile_source(fig9_source).protocol("ConnectorEx11N")
    mod = load(generate_python(compiled))
    for n in (1, 2, 5):
        bindings = compiled.default_bindings(n)
        expect = compiled.automata_for(bindings, granularity="medium")
        got = mod.build_automata(bindings)
        assert len(got) == len(expect)
        assert sorted(len(a.vertices) for a in got) == sorted(
            len(a.vertices) for a in expect
        )
        assert {v for a in got for v in a.vertices} == {
            v for a in expect for v in a.vertices
        }


def test_generated_connector_behaviour(fig9_source):
    mod = gen(fig9_source, "ConnectorEx11N")
    conn = mod.make_connector(sizes=3)
    got = pump(
        conn,
        {0: ["a0"], 1: ["b0"], 2: ["c0"]},
        {0: 1, 1: 1, 2: 1},
    )
    assert got == {0: ["a0"], 1: ["b0"], 2: ["c0"]}


def test_generated_scalar_protocol():
    mod = gen("Pipe(a;b) = Fifo1(a;v) mult Fifo1(v;b)", "Pipe")
    conn = mod.make_connector()
    got = pump(conn, {0: [1, 2, 3]}, {0: 3})
    assert got[0] == [1, 2, 3]


def test_generated_code_is_deterministic(fig9_source):
    p1 = compile_source(fig9_source).protocol("ConnectorEx11N")
    p2 = compile_source(fig9_source).protocol("ConnectorEx11N")
    assert generate_python(p1) == generate_python(p2)


def test_generated_aot_option(fig9_source):
    mod = gen(fig9_source, "ConnectorEx11N")
    conn = mod.make_connector(sizes=2, composition="aot")
    got = pump(conn, {0: ["x"], 1: ["y"]}, {0: 1, 1: 1})
    assert got == {0: ["x"], 1: ["y"]}


def test_generated_nested_conditional():
    src = """
D(t[];h) =
  if (#t == 1) { Fifo1(t[1];h) }
  else { if (#t == 2) { Merg2(t[1],t[2];h) }
  else { Merg2(t[1],t[2];c) mult Merg2(c,t[3];h) } }
"""
    mod = gen(src, "D")
    for n, senders in ((1, {0: ["a"]}), (2, {0: ["a"], 1: ["b"]}),
                       (3, {0: ["a"], 1: ["b"], 2: ["c"]})):
        conn = mod.make_connector(sizes=n)
        got = pump(conn, senders, {0: n})
        assert sorted(got[0]) == sorted(v[0] for v in senders.values())
