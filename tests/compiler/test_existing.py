"""The existing compilation approach: per-N compilation, large automata,
budget failures (§III.B, §V.B)."""

import pytest

from repro.compiler.existing import compile_existing
from repro.connectors import library
from repro.util.errors import CompilationBudgetExceeded

from tests.conftest import pump


def test_large_automaton_per_n(fig9_source):
    for n in (2, 3):
        ex = compile_existing(fig9_source, "ConnectorEx11N", sizes=n)
        assert ex.automaton.n_states >= 2
        assert len(ex.tail_vertices) == n
        assert len(ex.head_vertices) == n


def test_labels_hidden_to_boundary(fig9_source):
    ex = compile_existing(fig9_source, "ConnectorEx11N", sizes=2)
    boundary = set(ex.tail_vertices) | set(ex.head_vertices)
    for t in ex.automaton.transitions:
        assert t.label <= boundary


def test_behaviour_matches_new_approach(fig9_source):
    ex = compile_existing(fig9_source, "ConnectorEx11N", sizes=3)
    conn = ex.instantiate_connector()
    got = pump(
        conn,
        {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]},
        {0: 2, 1: 2, 2: 2},
    )
    assert got == {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]}


def test_state_budget_failure():
    src = library.dsl_source("EarlyAsyncMerger")
    with pytest.raises(CompilationBudgetExceeded):
        compile_existing(src, "EarlyAsyncMerger", sizes=12, state_budget=100)


def test_state_count_exponential_in_n():
    """EarlyAsyncMerger(n) has 2^n reachable states — the §V.B killer."""
    src = library.dsl_source("EarlyAsyncMerger")
    sizes = {}
    for n in (2, 3, 4, 5):
        ex = compile_existing(src, "EarlyAsyncMerger", sizes=n)
        sizes[n] = ex.automaton.n_states
    assert sizes[3] == 2 * sizes[2]
    assert sizes[4] == 2 * sizes[3]
    assert sizes[5] == 2 * sizes[4]


def test_sequenced_merger_states_linear(fig9_source):
    """The running example's seq ring keeps its state space linear — the
    existing approach handles it at any N."""
    counts = {
        n: compile_existing(fig9_source, "ConnectorEx11N", sizes=n).automaton.n_states
        for n in (2, 4, 8)
    }
    assert counts[8] <= 4 * counts[2]


def test_aot_connector_uses_single_region(fig9_source):
    ex = compile_existing(fig9_source, "ConnectorEx11N", sizes=2)
    conn = ex.instantiate_connector()
    from repro.runtime.ports import mkports

    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    assert conn.stats()["regions"] == 1
    assert conn.stats()["expansions"] == 0  # nothing lazy about it
    conn.close()
