"""Graph-based compilation entry point."""

import pytest

from repro.compiler.fromgraph import compile_graph, connector_from_graph
from repro.connectors import library
from repro.util.errors import WellFormednessError

from tests.conftest import pump


def test_compile_graph_one_automaton_per_arc():
    built = library.build_graph("SequencedMerger", 2)
    autos = compile_graph(built)
    assert len(autos) == len(built.graph.arcs)


def test_compile_graph_validates():
    from repro.connectors.graph import Arc, prim
    from repro.connectors.library import BuiltConnector

    bad = BuiltConnector(
        prim(Arc("sync", ("a",), ("x",))) | prim(Arc("sync", ("b",), ("x",))),
        ("a", "b"),
        (),
    )
    with pytest.raises(WellFormednessError):
        compile_graph(bad)


def test_connector_from_graph_runs():
    conn = connector_from_graph(library.build_graph("Replicator", 2))
    got = pump(conn, {0: [7]}, {0: 1, 1: 1})
    assert got == {0: [7], 1: [7]}


def test_connector_from_graph_options():
    conn = connector_from_graph(
        library.build_graph("Merger", 2), composition="aot", name="M"
    )
    got = pump(conn, {0: ["a"], 1: ["b"]}, {0: 2})
    assert sorted(got[0]) == ["a", "b"]
