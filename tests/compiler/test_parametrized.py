"""The parametrized compilation approach: plans, templates, instantiation."""

import pytest

from repro.compiler.parametrized import compile_source
from repro.compiler.plan import group_prims, resolve_name
from repro.lang import ast
from repro.lang.flatten import NameExpr, flatten
from repro.lang.interp import Env
from repro.lang.normalize import normalize
from repro.lang.parser import parse
from repro.util.errors import CompilationError, ScopeError


def test_compile_once_instantiate_many(fig9_source):
    """§V.B: 'with the new compiler, only one compilation was necessary'."""
    program = compile_source(fig9_source)
    protocol = program.protocol("ConnectorEx11N")
    for n in (1, 2, 3, 7):
        bindings = protocol.default_bindings(n)
        autos = protocol.automata_for(bindings)
        assert autos  # every n instantiates from the same compiled plan


def test_instantiation_counts_match_fig10(fig9_source):
    """Fig. 10's structure: 1 automaton for n=1; for n>1, one per X instance
    plus one per neighbouring Seq2 plus the closing Seq2."""
    protocol = compile_source(fig9_source).protocol("ConnectorEx11N")
    assert len(protocol.automata_for(protocol.default_bindings(1))) == 1
    for n in (2, 4, 6):
        autos = protocol.automata_for(protocol.default_bindings(n))
        assert len(autos) == n + (n - 1) + 1


def test_medium_vs_small_granularity(fig9_source):
    protocol = compile_source(fig9_source).protocol("ConnectorEx11N")
    b = protocol.default_bindings(3)
    mediums = protocol.automata_for(b, granularity="medium")
    smalls = protocol.automata_for(b, granularity="small")
    # X composes 3 primitives into one medium automaton
    assert len(smalls) > len(mediums)
    assert len(smalls) == 3 * 3 + 2 + 1


def test_templates_composed_at_compile_time(fig9_source):
    protocol = compile_source(fig9_source).protocol("ConnectorEx11N")
    # the prod body's template (X) is already a composed 2-state automaton
    prod_node = protocol.plan.conds[0].els.prods[0]
    (template,) = prod_node.body.templates
    assert len(template.fprims) == 3
    assert template.automaton.n_states == 2  # fifo1 empty/full


def test_conditional_selects_branch(fig9_source):
    protocol = compile_source(fig9_source).protocol("ConnectorEx11N")
    autos1 = protocol.automata_for(protocol.default_bindings(1))
    assert autos1[0].n_states == 2  # the single Fifo1
    assert "fifo" in autos1[0].name


def test_buffer_names_unique_across_iterations(fig9_source):
    protocol = compile_source(fig9_source).protocol("ConnectorEx11N")
    autos = protocol.automata_for(protocol.default_bindings(4))
    buffers = [b.name for a in autos for b in a.buffers]
    assert len(buffers) == len(set(buffers)) == 4


def test_vertex_wiring_across_mediums(fig9_source):
    """Seq2(next[i],prev[i+1]) must share vertices with X(i) and X(i+1)."""
    protocol = compile_source(fig9_source).protocol("ConnectorEx11N")
    autos = protocol.automata_for(protocol.default_bindings(2))
    all_vertices = [a.vertices for a in autos]
    seqs = [v for v in all_vertices if len(v) == 2]
    xs = [v for v in all_vertices if len(v) >= 4]
    assert len(seqs) == 2 and len(xs) == 2
    for s in seqs:
        assert any(s & x for x in xs)


def test_default_bindings_sizes():
    src = "D(t[],u;h[]) = Sync(u;h[1]) mult prod (i:1..#t) Fifo1(t[i];h[i])"
    protocol = compile_source(src).protocol("D")
    b = protocol.default_bindings({"t": 3, "h": 3})
    assert len(b["t"]) == 3 and b["u"] == "u"
    with pytest.raises(ScopeError, match="no length"):
        protocol.default_bindings({"t": 3})
    with pytest.raises(ScopeError, match="nonempty"):
        protocol.default_bindings(0)


def test_boundary_vertices_order():
    src = "D(t[],u;h) = Sync(u;h) mult prod (i:1..#t) Fifo1(t[i];h2[i])"
    protocol = compile_source(src).protocol("D")
    b = protocol.default_bindings(2)
    tails, heads = protocol.boundary_vertices(b)
    assert tails == ["t@1", "t@2", "u"]
    assert heads == ["h"]


def test_empty_instantiation_rejected():
    src = "D(t[];h) = if (#t == 99) { Sync(t[1];h) }"
    protocol = compile_source(src).protocol("D")
    with pytest.raises(CompilationError, match="no constituents"):
        protocol.automata_for(protocol.default_bindings(2))


def test_empty_prod_range_allowed():
    src = "D(t[];h) = Sync(t[1];h) mult prod (i:2..#t) Sync(t[i];x[i])"
    protocol = compile_source(src).protocol("D")
    autos = protocol.automata_for(protocol.default_bindings(1))
    assert len(autos) == 1


def test_group_prims_by_shared_vertices():
    src = "D(a,b;c,d) = Sync(a;x) mult Sync(x;c) mult Sync(b;d)"
    nf = normalize(flatten(parse(src), "D"))
    groups = group_prims(nf.prims)
    assert sorted(len(g) for g in groups) == [1, 2]


def test_resolve_name_paths():
    env = Env(variables={"i": 2}, lengths={"t": 3})
    ports = {"t": ["T1", "T2", "T3"], "u": "U"}
    assert resolve_name(NameExpr("t", (ast.Var("i"),), True), env, ports) == "T2"
    assert resolve_name(NameExpr("u", (), True), env, ports) == "U"
    assert resolve_name(NameExpr("loc$v", (ast.Var("i"),), False), env, ports) == "loc$v@2"
    assert resolve_name(NameExpr("loc$w", (), False), env, ports) == "loc$w"
    with pytest.raises(ScopeError, match="out of range"):
        resolve_name(NameExpr("t", (ast.Num(9),), True), env, ports)
    with pytest.raises(ScopeError, match="cannot be indexed"):
        resolve_name(NameExpr("u", (ast.Num(1),), True), env, ports)


def test_program_protocol_lookup(fig9_source):
    program = compile_source(fig9_source)
    assert program.protocol().name == "ConnectorEx11N"  # from main
    assert program.protocol("X").name == "X"
    with pytest.raises(ScopeError):
        program.protocol("Nope")


def test_protocol_lookup_without_main_ambiguous():
    program = compile_source("A(a;b) = Sync(a;b)\nB(a;b) = Sync(a;b)")
    with pytest.raises(ScopeError, match="several"):
        program.protocol()


def test_aliasing_instantiation_falls_back_soundly():
    """Two canonically distinct indices that collide at run time must not
    reuse the precomposed template blindly."""
    src = "D(t[];h[]) = Sync(t[1];x) mult Sync(x;h[1]) mult Sync(t[#t];y) mult Sync(y;h[#t])"
    protocol = compile_source(src).protocol("D")
    # n=1: t[1] == t[#t] alias; must still produce *some* sound automata
    autos = protocol.automata_for(protocol.default_bindings(1))
    vertices = frozenset().union(*(a.vertices for a in autos))
    assert "t@1" in vertices and "h@1" in vertices
