"""Executing main definitions (Figs. 8/9): ports, forall, task registry."""

import pytest

from repro.compiler import compile_source, run_main
from repro.util.errors import ScopeError


def test_fig9_main_runs(fig9_source):
    program = compile_source(fig9_source)

    def pro(out):
        out.send(out.name)

    def con(ins):
        return [p.recv() for p in ins]

    for n in (1, 3):
        results = run_main(
            program, {"Tasks.pro": pro, "Tasks.con": con}, params={"N": n}
        )
        assert results[-1] == [f"out@{i}" for i in range(1, n + 1)]
        assert len(results) == n + 1


def test_fig8_style_scalar_main():
    src = """
C(a,b;c1,c2) = Fifo1(a;c1) mult Fifo1(b;c2)
main = C(aOut,bOut;cIn1,cIn2) among
  Tasks.a(aOut) and Tasks.b(bOut) and Tasks.c(cIn1,cIn2)
"""
    program = compile_source(src)
    order = []

    def a(out):
        out.send("from-a")

    def b(out):
        out.send("from-b")

    def c(i1, i2):
        return (i1.recv(), i2.recv())

    results = run_main(program, {"Tasks.a": a, "Tasks.b": b, "Tasks.c": c})
    assert results[2] == ("from-a", "from-b")


def test_registry_by_object():
    src = """
P(a;b) = Fifo1(a;b)
main = P(x;y) among T.send(x) and T.recv(y)
"""

    class T:
        @staticmethod
        def send(out):
            out.send(42)

        @staticmethod
        def recv(inp):
            return inp.recv()

    class Registry:
        pass

    reg = Registry()
    reg.T = T
    results = run_main(compile_source(src), reg)
    assert results[1] == 42


def test_registry_short_name_fallback():
    src = "P(a;b) = Fifo1(a;b)\nmain = P(x;y) among T.go(x) and T.stop(y)"
    results = run_main(
        compile_source(src),
        {"go": lambda o: o.send(1), "stop": lambda i: i.recv()},
    )
    assert results[1] == 1


def test_missing_param_rejected(fig9_source):
    program = compile_source(fig9_source)
    with pytest.raises(ScopeError, match="not supplied"):
        run_main(program, {}, params={})


def test_missing_task_rejected():
    src = "P(a;b) = Fifo1(a;b)\nmain = P(x;y) among T.a(x) and T.b(y)"
    with pytest.raises(ScopeError, match="not found"):
        run_main(compile_source(src), {"T.a": lambda o: o.send(1)})


def test_no_main_rejected():
    program = compile_source("P(a;b) = Fifo1(a;b)")
    with pytest.raises(ScopeError, match="no main"):
        run_main(program, {})


def test_indexed_port_use_in_forall(fig9_source):
    """forall (i:1..N) Tasks.pro(out[i]) hands each task its own port."""
    program = compile_source(fig9_source)
    seen = []

    def pro(out):
        seen.append(out.name)
        out.send(1)

    def con(ins):
        return [p.recv() for p in ins]

    run_main(program, {"Tasks.pro": pro, "Tasks.con": con}, params={"N": 3})
    assert sorted(seen) == ["out@1", "out@2", "out@3"]


def test_task_exceptions_propagate():
    src = "P(a;b) = Fifo1(a;b)\nmain = P(x;y) among T.boom(x) and T.quiet(y)"

    def boom(out):
        raise ValueError("task failed")

    def quiet(inp):
        # non-blocking so the group join is not held up by the dead peer
        ok, value = inp.try_recv()
        return value if ok else None

    with pytest.raises(ValueError, match="task failed"):
        run_main(
            compile_source(src),
            {"T.boom": boom, "T.quiet": quiet},
            join_timeout=10.0,
        )


def test_connector_options_forwarded(fig9_source):
    program = compile_source(fig9_source)

    def pro(out):
        out.send(0)

    def con(ins):
        return [p.recv() for p in ins]

    results = run_main(
        program,
        {"Tasks.pro": pro, "Tasks.con": con},
        params={"N": 2},
        composition="aot",
    )
    assert results[-1] == [0, 0]
