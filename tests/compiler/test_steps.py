"""The compiled step tier (:mod:`repro.compiler.steps`, docs/COMPILER.md).

Covers tier selection (``compiled="auto"``/``"off"``/``"require"``),
compile-or-fall-back demotion, differential behaviour against the
interpretive tier on the unobserved fast path, recompilation across
``reconfigure``, and the closure-binding contract (compiled steps keep
working after a checkpoint restore mutates the buffer store in place).
"""

import pytest

from repro.automata.constraint import DEFAULT_REGISTRY
from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.errors import CompileError
from repro.runtime.ports import mkports

from tests.conftest import pump


def drive_posted(conn, rounds=20):
    """Single-threaded unobserved driving over post_send/post_recv — the
    compiled tier's zero-allocation fast path (no tracer, no metrics, no
    parked threads).  Returns the per-head received values."""
    engine = conn.engine
    tails, heads = list(conn.tail_vertices), list(conn.head_vertices)
    outstanding = {}
    got = {v: [] for v in heads}
    for k in range(rounds):
        for v in heads:
            op = outstanding.get(v)
            if op is not None and op.done:
                got[v].append(op.value)
                outstanding[v] = None
            if outstanding.get(v) is None:
                outstanding[v] = engine.post_recv(v)
        for v in tails:
            op = outstanding.get(v)
            if op is None or op.done:
                outstanding[v] = engine.post_send(v, k)
    for v in heads:
        op = outstanding.get(v)
        if op is not None and op.done:
            got[v].append(op.value)
    return got


# -- tier selection ---------------------------------------------------------


def test_auto_compiles_library_connectors():
    for name in ("Replicator", "EarlyAsyncMerger", "Sequencer"):
        conn = library.connector(name, 2, compiled="auto")
        outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
        conn.connect(outs, ins)
        stats = conn.stats()
        assert stats["step_tier"] == "auto"
        assert stats["compiled_regions"] >= 1, name
        conn.close()


def test_off_never_compiles():
    conn = library.connector("Replicator", 2, compiled="off")
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    assert conn.stats()["compiled_regions"] == 0
    got = drive_posted(conn, rounds=5)
    conn.close()
    h0, h1 = conn.head_vertices
    assert got[h0] == got[h1] and len(got[h0]) >= 3


def test_require_accepts_compilable():
    conn = library.connector("Sequencer", 3, compiled="require")
    outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
    conn.connect(outs, ins)
    assert conn.stats()["compiled_regions"] == len(conn.engine.regions)
    conn.close()


def test_invalid_tier_rejected():
    with pytest.raises(ValueError, match="compiled"):
        library.connector("Replicator", 2, compiled="sometimes")


# -- compile-or-fall-back ---------------------------------------------------


def test_unregistered_function_demotes_and_late_registration_works():
    """An unregistered <name> demotes the region (the interpreter resolves
    names at first fire, so late registration must keep working) instead of
    failing the connect."""
    reg = DEFAULT_REGISTRY.merged_with(None)
    conn = compile_source("T(a;b) = Transform<late>(a;b)").instantiate_connector(
        "T", registry=reg, compiled="auto"
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    assert conn.stats()["compiled_regions"] == 0  # demoted, not failed
    reg.register_function("late", lambda x: x * 10)  # after connect
    got = drive_posted(conn, rounds=5)
    conn.close()
    head = conn.head_vertices[0]
    assert got[head][:3] == [0, 10, 20]


def test_unregistered_function_fails_require():
    with pytest.raises(CompileError, match="late"):
        compile_source("T(a;b) = Transform<late>(a;b)").instantiate_connector(
            "T", compiled="require"
        ).connect(*mkports(1, 1))


def test_transition_budget_demotes(monkeypatch):
    from repro.compiler import steps

    monkeypatch.setattr(steps, "TRANSITION_BUDGET", 0)
    conn = library.connector("Replicator", 2, composition="aot",
                             compiled="auto")
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    assert conn.stats()["compiled_regions"] == 0
    # ...and the interpretive fallback still runs the protocol.
    got = drive_posted(conn, rounds=5)
    conn.close()
    h0, h1 = conn.head_vertices
    assert got[h0] == got[h1] and len(got[h0]) >= 3


def test_compile_error_is_value_error():
    """CompileError subclasses ValueError so legacy call sites that caught
    ValueError around codegen/simplify keep working."""
    assert issubclass(CompileError, ValueError)


# -- differential: compiled vs interpretive on the fast path ----------------


@pytest.mark.parametrize("name,n", [
    ("Replicator", 2), ("EarlyAsyncMerger", 3), ("Sequencer", 3),
    ("SequencedMerger", 2), ("Alternator", 2), ("Barrier", 2),
])
def test_two_tier_differential_unobserved(name, n):
    """Same single-threaded posted workload, no tracer/metrics attached
    (the compiled tier's fast path returns True without building the
    observability tuple): per-head streams must be identical."""
    results = {}
    for tier in ("off", "auto"):
        conn = library.connector(name, n, compiled=tier)
        outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
        conn.connect(outs, ins)
        results[tier] = drive_posted(conn)
        stats = conn.stats()
        conn.close()
        if tier == "auto":
            assert stats["compiled_regions"] >= 1, name
        else:
            assert stats["compiled_regions"] == 0
    assert results["off"] == results["auto"], name


def test_data_constraints_compiled():
    """Filters and transforms inline to plain comparisons/calls in the
    generated source; semantics must match the interpretive plan walk."""
    reg = DEFAULT_REGISTRY.merged_with(None)
    reg.register_predicate("even", lambda x: x % 2 == 0)
    reg.register_function("double", lambda x: 2 * x)
    src = "T(a;b) = Filter<even>(a;m) mult Transform<double>(m;b)"
    got = {}
    for tier in ("off", "auto"):
        conn = compile_source(src).instantiate_connector(
            "T", registry=reg, compiled=tier
        )
        got[tier] = pump(conn, {0: [1, 2, 3, 4]}, {0: 2})[0]
    assert got["auto"] == got["off"] == [4, 8]


# -- reconfigure and restore ------------------------------------------------


def test_reconfigure_recompiles():
    """leave() recompiles the protocol for the smaller arity and re-adopts
    regions: the compiled tables must be rebuilt against the fresh
    structures (pending queues, buffers), and the survivors keep flowing
    through the compiled tier."""
    import threading

    conn = library.connector("Merger", 3, compiled="auto",
                             default_timeout=10.0)
    outs, ins = mkports(3, 1)
    conn.connect(outs, ins)
    assert conn.stats()["compiled_regions"] >= 1
    got: list = []

    def recv_some(count):
        t = threading.Thread(
            target=lambda: got.extend(ins[0].recv() for _ in range(count))
        )
        t.start()
        return t

    t = recv_some(1)
    outs[2].send("pre")
    t.join(10.0)
    conn.leave(outs[2])
    assert conn.stats()["compiled_regions"] >= 1  # recompiled, not demoted
    t = recv_some(2)
    outs[0].send("x")
    outs[1].send("y")
    t.join(10.0)
    assert got == ["pre", "x", "y"]
    conn.close()


def test_restore_feeds_compiled_closures():
    """set_contents mutates the deques compiled closures bind, so buffered
    state restored from a checkpoint must be visible to compiled steps."""
    c1 = library.connector("EarlyAsyncMerger", 2, compiled="auto")
    outs1, ins1 = mkports(2, 1)
    c1.connect(outs1, ins1)
    outs1[0].send("kept")
    cp = c1.checkpoint()
    c1.close()

    c2 = library.connector("EarlyAsyncMerger", 2, compiled="auto")
    outs2, ins2 = mkports(2, 1)
    c2.connect(outs2, ins2)
    c2.restore(cp)
    assert c2.stats()["compiled_regions"] >= 1
    assert ins2[0].recv() == "kept"
    c2.close()


# -- emitted source ---------------------------------------------------------


def test_region_sources_rows():
    from repro.compiler.steps import region_sources

    conn = library.connector("Sequencer", 2, compiled="auto")
    outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
    conn.connect(outs, ins)
    rows = region_sources(conn.engine)
    assert rows, "compiled regions must expose their emitted source"
    for _idx, _state, label, source in rows:
        assert source.startswith("def _fire(")
        compile(source, f"<recheck {label}>", "exec")  # stays valid Python
    conn.close()
