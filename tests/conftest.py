"""Shared test helpers.

Most protocol tests follow one pattern: build a connector, attach trivial
producer/consumer tasks, run them with a timeout (so a protocol bug fails
the test instead of hanging the suite), and assert on what the consumers
received.  :func:`pump` packages that pattern.
"""

from __future__ import annotations

import pytest

from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup

JOIN_TIMEOUT = 30.0


def pump(conn, sends: dict[int, list], recv_counts: dict[int, int],
         timeout: float = JOIN_TIMEOUT):
    """Drive ``conn`` with one sender per entry of ``sends`` (outport index →
    values to send) and one receiver per entry of ``recv_counts`` (inport
    index → number of messages to receive).  Returns {inport index:
    received list}.  Ports not mentioned stay idle."""
    outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
    conn.connect(outs, ins)
    received: dict[int, list] = {}

    def sender(port, values):
        for v in values:
            port.send(v)

    def receiver(idx, port, count):
        received[idx] = [port.recv() for _ in range(count)]

    try:
        with TaskGroup(join_timeout=timeout) as group:
            for idx, values in sends.items():
                group.spawn(sender, outs[idx], values, name=f"send{idx}")
            for idx, count in recv_counts.items():
                group.spawn(receiver, idx, ins[idx], count, name=f"recv{idx}")
    finally:
        conn.close()
    return received


@pytest.fixture
def fig9_source() -> str:
    """The paper's Fig. 9 program (running example, parametrized)."""
    return """
X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

ConnectorEx11N(tl[];hd[]) =
  if (#tl == 1) {
    Fifo1(tl[1];hd[1])
  } else {
    prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
    mult prod (i:1..#tl-1) Seq2(next[i],prev[i+1];)
    mult Seq2(prev[1],next[#tl];)
  }

main(N) = ConnectorEx11N(out[1..N];in[1..N]) among
  forall (i:1..N) Tasks.pro(out[i]) and Tasks.con(in[1..N])
"""
