"""DOT rendering of graphs and automata."""

from repro.connectors import library
from repro.connectors.dot import automaton_to_dot, graph_to_dot
from repro.connectors.graph import Arc, prim
from repro.connectors.primitives import build_automaton


def test_graph_dot_structure():
    built = library.build_graph("SequencedMerger", 2)
    dot = graph_to_dot(built.graph, set(built.tails), set(built.heads))
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert "->" in dot
    # boundary vertices drawn as triangles
    assert "triangle" in dot and "invtriangle" in dot


def test_graph_dot_hyperarcs_get_hub():
    built = library.build_graph("Replicator", 3)
    dot = graph_to_dot(built.graph, set(built.tails), set(built.heads))
    assert "shape=box" in dot  # the replicator hyperarc


def test_graph_dot_plain_edges_for_binary():
    g = prim(Arc("sync", ("a",), ("b",)))
    dot = graph_to_dot(g)
    assert '"a" -> "b"' in dot


def test_automaton_dot():
    a = build_automaton(Arc("fifo1", ("x",), ("y",)), "q")
    dot = automaton_to_dot(a)
    assert "digraph" in dot
    assert "__init" in dot
    assert "{x}" in dot and "{y}" in dot


def test_dot_quoting():
    g = prim(Arc("sync", ("a",), ("b",)))
    dot = graph_to_dot(g, name='we"ird')
    assert '\\"' in dot
