"""Connector graphs: ⊕ composition, primitives, well-formedness."""

import pytest

from repro.connectors.graph import Arc, ConnectorGraph, prim
from repro.util.errors import WellFormednessError


def arc(type_, tails, heads, **params):
    return Arc(type_, tuple(tails), tuple(heads), tuple(sorted(params.items())))


def test_prim_is_primitive():
    g = prim(arc("sync", ["a"], ["b"]))
    assert g.is_primitive
    assert not g.is_composite
    assert g.vertices == {"a", "b"}


def test_union_composition():
    g1 = prim(arc("sync", ["a"], ["b"]))
    g2 = prim(arc("fifo1", ["b"], ["c"]))
    g = g1 | g2
    assert g.is_composite
    assert g.vertices == {"a", "b", "c"}
    assert len(g.arcs) == 2


def test_union_idempotent_on_same_arc():
    """⊕ is set union: composing a connector with itself changes nothing."""
    g = prim(arc("sync", ["a"], ["b"]))
    assert len((g | g).arcs) == 1


def test_primitives_representation():
    g = prim(arc("sync", ["a"], ["b"])) | prim(arc("sync", ["b"], ["c"]))
    prims = g.primitives()
    assert len(prims) == 2
    assert all(p.is_primitive for p in prims)
    # Γ recomposes to the original connector
    recomposed = prims[0] | prims[1]
    assert recomposed.vertices == g.vertices
    assert set(recomposed.arcs) == set(g.arcs)


def test_public_vertices():
    """Paper §III.A: a vertex is public iff it has at most one incoming or
    outgoing arc."""
    g = prim(arc("sync", ["a"], ["b"])) | prim(arc("sync", ["b"], ["c"]))
    assert g.public_vertices() == {"a", "c"}


def test_writers_readers():
    g = prim(arc("sync", ["a"], ["b"])) | prim(arc("sync", ["b"], ["c"]))
    assert len(g.writers("b")) == 1
    assert len(g.readers("b")) == 1
    assert g.writers("a") == []


def test_validate_accepts_well_formed():
    g = prim(arc("fifo1", ["a"], ["b"]))
    g.validate(sources={"a"}, sinks={"b"})


def test_validate_rejects_double_writer():
    g = prim(arc("sync", ["a"], ["x"])) | prim(arc("sync", ["b"], ["x"]))
    with pytest.raises(WellFormednessError, match="merger"):
        g.validate()


def test_validate_rejects_double_reader():
    g = prim(arc("sync", ["x"], ["a"])) | prim(arc("sync", ["x"], ["b"]))
    with pytest.raises(WellFormednessError, match="replicator"):
        g.validate()


def test_validate_rejects_boundary_conflict():
    g = prim(arc("sync", ["a"], ["b"]))
    with pytest.raises(WellFormednessError):
        g.validate(sources={"b"})  # b written by arc AND by a task


def test_validate_rejects_unknown_boundary():
    g = prim(arc("sync", ["a"], ["b"]))
    with pytest.raises(WellFormednessError):
        g.validate(sources={"zzz"})


def test_dangling_vertices():
    g = prim(arc("sync", ["a"], ["b"]))
    assert g.dangling_vertices() == {"a", "b"}
    assert g.dangling_vertices(sources={"a"}, sinks={"b"}) == set()


def test_arc_param_access():
    a = arc("fifon", ["a"], ["b"], capacity=4)
    assert a.param("capacity") == 4
    assert a.param("missing", "dflt") == "dflt"


def test_str_representations():
    a = arc("fifon", ["a"], ["b"], capacity=4)
    assert "fifon" in str(a) and "capacity" in str(a)
    assert "mult" in str(prim(a) | prim(arc("sync", ["b"], ["c"])))
