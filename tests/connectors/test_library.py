"""Behavioural tests of the 18 library connectors (direct graph builders).

Each test pins down the connector's defining protocol property — ordering,
synchrony, exclusivity, mutual exclusion — by running real tasks through the
runtime engine.
"""

import queue
import threading

import pytest

from repro.compiler.fromgraph import connector_from_graph
from repro.connectors import library
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup
from repro.util.errors import PortClosedError, WellFormednessError

from tests.conftest import pump


def conn_for(name, n, **opt):
    return connector_from_graph(library.build_graph(name, n), name=name, **opt)


def test_names_exactly_18():
    assert len(library.names()) == 18


@pytest.mark.parametrize("name", library.names())
@pytest.mark.parametrize("n", [1, 2, 4])
def test_graphs_validate(name, n):
    library.build_graph(name, n)  # validates internally


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        library.build_graph("Nope", 2)


def test_n_zero_rejected():
    with pytest.raises(WellFormednessError):
        library.build_graph("Merger", 0)


# -- synchronous routing ------------------------------------------------------


def test_merger_delivers_everything():
    c = conn_for("Merger", 3)
    got = pump(c, {0: ["a1", "a2"], 1: ["b1"], 2: ["c1"]}, {0: 4})
    assert sorted(got[0]) == ["a1", "a2", "b1", "c1"]
    # per-producer order preserved (merger is synchronous per message)
    a_msgs = [m for m in got[0] if m.startswith("a")]
    assert a_msgs == ["a1", "a2"]


def test_replicator_broadcasts_to_all():
    c = conn_for("Replicator", 3)
    got = pump(c, {0: [1, 2, 3]}, {0: 3, 1: 3, 2: 3})
    assert got[0] == got[1] == got[2] == [1, 2, 3]


def test_router_delivers_each_exactly_once():
    c = conn_for("Router", 3)
    c_outs, c_ins = mkports(1, 3)
    c.connect(c_outs, c_ins)
    received = queue.SimpleQueue()

    def consumer(p):
        try:
            while True:
                received.put(p.recv())
        except PortClosedError:
            pass

    with TaskGroup() as g:
        handles = [g.spawn(consumer, p) for p in c_ins]
        g.spawn(lambda: [c_outs[0].send(k) for k in range(12)]).join()
        import time

        time.sleep(0.1)
        c.close()
    got = []
    while not received.empty():
        got.append(received.get())
    assert sorted(got) == list(range(12))


# -- async variants ------------------------------------------------------------


@pytest.mark.parametrize("name", ["EarlyAsyncMerger", "LateAsyncMerger",
                                  "EarlyAsyncBarrierMerger"])
def test_async_mergers_deliver_everything(name):
    c = conn_for(name, 3)
    got = pump(c, {0: ["a"], 1: ["b"], 2: ["c"]}, {0: 3})
    assert sorted(got[0]) == ["a", "b", "c"]


@pytest.mark.parametrize("name", ["EarlyAsyncReplicator", "LateAsyncReplicator"])
def test_async_replicators_broadcast(name):
    c = conn_for(name, 2)
    got = pump(c, {0: [1, 2]}, {0: 2, 1: 2})
    assert got[0] == [1, 2]
    assert got[1] == [1, 2]


@pytest.mark.parametrize("name", ["EarlyAsyncRouter", "LateAsyncRouter"])
def test_async_routers_route_exclusively(name):
    c = conn_for(name, 2)
    outs, ins = mkports(1, 2)
    c.connect(outs, ins)
    got = queue.SimpleQueue()

    def consumer(p):
        try:
            while True:
                got.put(p.recv())
        except PortClosedError:
            pass

    with TaskGroup() as g:
        for p in ins:
            g.spawn(consumer, p)
        g.spawn(lambda: [outs[0].send(k) for k in range(8)]).join()
        import time

        time.sleep(0.1)
        c.close()
    items = []
    while not got.empty():
        items.append(got.get())
    assert sorted(items) == list(range(8))


def test_early_async_merger_buffers_decouple_producers():
    """Producers can complete sends before the consumer ever receives."""
    c = conn_for("EarlyAsyncMerger", 2)
    outs, ins = mkports(2, 1)
    c.connect(outs, ins)
    outs[0].send("x")  # completes: buffered in the per-producer fifo
    outs[1].send("y")
    got = {ins[0].recv(), ins[0].recv()}
    c.close()
    assert got == {"x", "y"}


def test_late_async_merger_single_buffer():
    """Only one buffer behind the merger: a second send blocks until the
    consumer drains the first."""
    c = conn_for("LateAsyncMerger", 2)
    outs, ins = mkports(2, 1)
    c.connect(outs, ins)
    outs[0].send("x")
    assert not outs[1].try_send("y")  # fifo full
    assert ins[0].recv() == "x"
    assert outs[1].try_send("y")
    c.close()


# -- sequencing ------------------------------------------------------------------


def test_sequencer_cyclic_turns():
    c = conn_for("Sequencer", 3)
    outs, _ = mkports(3, 0)
    c.connect(outs, [])
    for _round in range(2):
        for turn in range(3):
            for i, o in enumerate(outs):
                ok = o.try_send("x")
                assert ok == (i == turn)
                if ok:
                    break
    c.close()


def test_out_sequencer_round_robin():
    c = conn_for("OutSequencer", 3)
    got = pump(c, {0: list(range(6))}, {0: 2, 1: 2, 2: 2})
    assert got == {0: [0, 3], 1: [1, 4], 2: [2, 5]}


def test_early_async_out_sequencer_decouples_producer():
    c = conn_for("EarlyAsyncOutSequencer", 2)
    outs, ins = mkports(1, 2)
    c.connect(outs, ins)
    outs[0].send("a")  # buffered; no consumer yet
    assert ins[0].recv() == "a"
    outs[0].send("b")
    assert ins[1].recv() == "b"
    c.close()


def test_alternator_round_robin_interleaving():
    c = conn_for("Alternator", 3)
    got = pump(
        c,
        {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]},
        {0: 6},
    )
    assert got[0] == ["a0", "b0", "c0", "a1", "b1", "c1"]


def test_alternator_synchronizes_producer_rounds():
    """Producer 1 cannot start round 2 before the others did round 1."""
    c = conn_for("Alternator", 2)
    outs, ins = mkports(2, 1)
    c.connect(outs, ins)
    assert not outs[0].try_send("a0")  # round fires only when both offer
    done = threading.Event()

    def other():
        outs[1].send("b0")
        done.set()

    with TaskGroup() as g:
        g.spawn(other)
        outs[0].send("a0")
        assert ins[0].recv() == "a0"
        assert ins[0].recv() == "b0"
        done.wait(5)
    c.close()


# -- barriers and locks ------------------------------------------------------------


def test_barrier_lock_step():
    c = conn_for("Barrier", 2)
    got = pump(
        c, {0: ["a0", "a1"], 1: ["b0", "b1"]}, {0: 2, 1: 2}
    )
    assert got[0] == ["a0", "a1"]
    assert got[1] == ["b0", "b1"]


def test_barrier_blocks_until_all_offer():
    c = conn_for("Barrier", 2)
    outs, ins = mkports(2, 2)
    c.connect(outs, ins)
    assert not outs[0].try_send("a")  # partner not ready
    c.close()


def test_lock_mutual_exclusion():
    n = 3
    c = conn_for("Lock", n)
    outs, _ = mkports(2 * n, 0)
    c.connect(outs, [])
    acquires, releases = outs[:n], outs[n:]
    inside: list[str] = []
    violations: list = []
    lk = threading.Lock()

    def client(i):
        for _ in range(20):
            acquires[i].send("acq")
            with lk:
                inside.append(i)
                if len(inside) > 1:
                    violations.append(tuple(inside))
            with lk:
                inside.remove(i)
            releases[i].send("rel")

    with TaskGroup() as g:
        for i in range(n):
            g.spawn(client, i)
    c.close()
    assert not violations


def test_lock_release_required_before_next_acquire():
    c = conn_for("Lock", 2)
    outs, _ = mkports(4, 0)
    c.connect(outs, [])
    a1, a2, r1, _r2 = outs
    a1.send("acq")
    assert not a2.try_send("acq")  # token taken
    r1.send("rel")
    assert a2.try_send("acq")
    c.close()


# -- pipelines and the running example ------------------------------------------------


def test_fifo_chain_order_and_capacity():
    n = 3
    c = conn_for("FifoChain", n)
    outs, ins = mkports(1, 1)
    c.connect(outs, ins)
    # capacity n: n sends complete without any receive
    for k in range(n):
        assert outs[0].try_send(k), k
    assert not outs[0].try_send(99)
    got = [ins[0].recv() for _ in range(n)]
    assert got == [0, 1, 2]
    c.close()


def test_sequenced_merger_total_order():
    c = conn_for("SequencedMerger", 3)
    got = pump(
        c,
        {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]},
        {0: 2, 1: 2, 2: 2},
    )
    assert got[0] == ["a0", "a1"]
    assert got[1] == ["b0", "b1"]
    assert got[2] == ["c0", "c1"]


def test_sequenced_merger_gates_second_producer():
    """Ex. 1/Ex. 6: B's send cannot complete before A's message has been
    delivered to C."""
    c = conn_for("SequencedMerger", 2)
    outs, ins = mkports(2, 2)
    c.connect(outs, ins)
    assert not outs[1].try_send("b")  # A goes strictly first
    outs[0].send("a")
    assert not outs[1].try_send("b")  # still: C must receive A's message
    assert ins[0].recv() == "a"
    assert outs[1].try_send("b")
    assert ins[1].recv() == "b"
    c.close()


def test_sequenced_merger_n1_degenerates_to_fifo():
    c = conn_for("SequencedMerger", 1)
    outs, ins = mkports(1, 1)
    c.connect(outs, ins)
    outs[0].send("only")
    assert ins[0].recv() == "only"
    c.close()
