"""Cross-validation: DSL-compiled connectors vs. direct graph builders.

The DSL sources encode n-ary routing as chains of binary primitives; these
tests check the *observable protocol* is the same as the direct n-ary
builders', across compilation/execution strategies.
"""

import pytest

from repro.connectors import library
from repro.runtime.ports import mkports

from tests.conftest import pump


@pytest.mark.parametrize("name", library.names())
@pytest.mark.parametrize("n", [1, 3])
def test_dsl_compiles_and_matches_arity(name, n):
    built = library.build_graph(name, n)
    conn = library.connector(name, n)
    assert len(conn.tail_vertices) == len(built.tails)
    assert len(conn.head_vertices) == len(built.heads)
    conn.close()


@pytest.mark.parametrize("options", [
    {},  # new approach, JIT (default)
    {"composition": "aot"},  # new approach, ahead-of-time
    {"use_partitioning": True},  # ref-[32] partitioning
])
def test_merger_equivalence(options):
    c = library.connector("Merger", 3, **options)
    got = pump(c, {0: ["a"], 1: ["b"], 2: ["c"]}, {0: 3})
    assert sorted(got[0]) == ["a", "b", "c"]


@pytest.mark.parametrize("options", [
    {},
    {"composition": "aot"},
    {"use_partitioning": True},
])
def test_replicator_equivalence(options):
    c = library.connector("Replicator", 3, **options)
    got = pump(c, {0: [1, 2]}, {0: 2, 1: 2, 2: 2})
    assert got[0] == got[1] == got[2] == [1, 2]


def test_router_covers_all_consumers_eventually():
    """The binary router chain must reach every head (exclusively)."""
    import queue

    from repro.runtime.tasks import TaskGroup
    from repro.util.errors import PortClosedError

    c = library.connector("Router", 4)
    outs, ins = mkports(1, 4)
    c.connect(outs, ins)
    got = queue.SimpleQueue()

    def consumer(i, p):
        try:
            while True:
                got.put((i, p.recv()))
        except PortClosedError:
            pass

    with TaskGroup() as g:
        for i, p in enumerate(ins):
            g.spawn(consumer, i, p)
        g.spawn(lambda: [outs[0].send(k) for k in range(40)]).join()
        import time

        time.sleep(0.2)
        c.close()
    items = []
    while not got.empty():
        items.append(got.get())
    assert sorted(v for _, v in items) == list(range(40))


def test_sequencer_dsl_turns():
    c = library.connector("Sequencer", 3)
    outs, _ = mkports(3, 0)
    c.connect(outs, [])
    for turn in range(3):
        for i, o in enumerate(outs):
            ok = o.try_send("x")
            assert ok == (i == turn)
            if ok:
                break
    c.close()


def test_out_sequencer_dsl_round_robin():
    c = library.connector("OutSequencer", 3)
    got = pump(c, {0: list(range(6))}, {0: 2, 1: 2, 2: 2})
    assert got == {0: [0, 3], 1: [1, 4], 2: [2, 5]}


def test_alternator_dsl_round_robin():
    c = library.connector("Alternator", 3)
    got = pump(c, {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]}, {0: 6})
    assert got[0] == ["a0", "b0", "c0", "a1", "b1", "c1"]


def test_barrier_dsl_lock_step():
    c = library.connector("Barrier", 2)
    got = pump(c, {0: ["a0", "a1"], 1: ["b0", "b1"]}, {0: 2, 1: 2})
    assert got[0] == ["a0", "a1"] and got[1] == ["b0", "b1"]


def test_lock_dsl_mutual_exclusion():
    import threading

    from repro.runtime.tasks import TaskGroup

    n = 2
    c = library.connector("Lock", n)
    outs, _ = mkports(2 * n, 0)
    c.connect(outs, [])
    acquires, releases = outs[:n], outs[n:]
    inside = []
    bad = []
    lk = threading.Lock()

    def client(i):
        for _ in range(15):
            acquires[i].send("acq")
            with lk:
                inside.append(i)
                if len(inside) > 1:
                    bad.append(list(inside))
                inside.remove(i)
            releases[i].send("rel")

    with TaskGroup() as g:
        for i in range(n):
            g.spawn(client, i)
    c.close()
    assert not bad


def test_sequenced_merger_dsl_matches_fig9_semantics():
    c = library.connector("SequencedMerger", 3)
    got = pump(
        c,
        {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]},
        {0: 2, 1: 2, 2: 2},
    )
    assert got == {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]}


def test_fifo_chain_dsl_capacity():
    c = library.connector("FifoChain", 3)
    outs, ins = mkports(1, 1)
    c.connect(outs, ins)
    for k in range(3):
        assert outs[0].try_send(k)
    assert not outs[0].try_send(99)
    assert [ins[0].recv() for _ in range(3)] == [0, 1, 2]
    c.close()


def test_early_async_variants_dsl():
    c = library.connector("EarlyAsyncMerger", 2)
    outs, ins = mkports(2, 1)
    c.connect(outs, ins)
    outs[0].send("x")  # decoupled: completes into the per-producer buffer
    outs[1].send("y")
    assert {ins[0].recv(), ins[0].recv()} == {"x", "y"}
    c.close()


def test_dsl_source_text_available():
    for name in library.names():
        src = library.dsl_source(name, 4)
        assert name.split("$")[0] in src


def test_fifochain_source_requires_n():
    with pytest.raises(ValueError):
        library.dsl_source("FifoChain")
