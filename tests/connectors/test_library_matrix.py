"""Systematic scenario matrix: every library connector, direct graph vs.
parametrized DSL, deterministic observations compared exactly and
nondeterministic ones as multisets.

Complements the per-connector semantic tests: this file guarantees *no*
library entry ships without a behavioural check in both constructions.
"""

import queue

import pytest

from repro.compiler.fromgraph import connector_from_graph
from repro.connectors import library
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup
from repro.util.errors import PortClosedError

from tests.conftest import pump

N = 3
ROUNDS = 2


def build(name, source):
    if source == "direct":
        return connector_from_graph(library.build_graph(name, N), name=name)
    return library.connector(name, N)


def run_scenario(conn, name):
    """Drive the connector per its family; return a comparable observation."""
    n_out = len(conn.tail_vertices)
    n_in = len(conn.head_vertices)

    if name in ("Merger", "EarlyAsyncMerger", "LateAsyncMerger",
                "EarlyAsyncBarrierMerger"):
        got = pump(conn, {i: [f"p{i}r{r}" for r in range(ROUNDS)]
                          for i in range(N)}, {0: N * ROUNDS})
        return ("multiset", sorted(got[0]))

    if name == "Alternator":
        got = pump(conn, {i: [f"p{i}r{r}" for r in range(ROUNDS)]
                          for i in range(N)}, {0: N * ROUNDS})
        return ("exact", got[0])

    if name in ("Replicator", "EarlyAsyncReplicator", "LateAsyncReplicator"):
        got = pump(conn, {0: list(range(ROUNDS))},
                   {i: ROUNDS for i in range(N)})
        return ("exact", [got[i] for i in range(N)])

    if name in ("Router", "EarlyAsyncRouter", "LateAsyncRouter"):
        outs, ins = mkports(n_out, n_in)
        conn.connect(outs, ins)
        sink: queue.SimpleQueue = queue.SimpleQueue()

        def consumer(p):
            try:
                while True:
                    sink.put(p.recv())
            except PortClosedError:
                pass

        with TaskGroup(join_timeout=30) as g:
            for p in ins:
                g.spawn(consumer, p)
            g.spawn(lambda: [outs[0].send(k) for k in range(N * ROUNDS)]).join(20)
            import time

            time.sleep(0.1)
            conn.close()
        items = []
        while not sink.empty():
            items.append(sink.get())
        return ("multiset", sorted(items))

    if name in ("OutSequencer", "EarlyAsyncOutSequencer"):
        got = pump(conn, {0: list(range(N * ROUNDS))},
                   {i: ROUNDS for i in range(N)})
        return ("exact", [got[i] for i in range(N)])

    if name == "Sequencer":
        outs, _ = mkports(n_out, 0)
        conn.connect(outs, [])
        grants = []
        for _ in range(N * ROUNDS):
            for i, o in enumerate(outs):
                if o.try_send("x"):
                    grants.append(i)
                    break
        conn.close()
        return ("exact", grants)

    if name == "Barrier":
        got = pump(conn, {i: [f"p{i}r{r}" for r in range(ROUNDS)]
                          for i in range(N)}, {i: ROUNDS for i in range(N)})
        return ("exact", [got[i] for i in range(N)])

    if name == "Lock":
        outs, _ = mkports(n_out, 0)
        conn.connect(outs, [])
        acquires, releases = outs[:N], outs[N:]
        grants = []
        for _ in range(ROUNDS):
            for i in range(N):
                assert acquires[i].try_send("acq")
                grants.append(i)
                assert releases[i].try_send("rel")
        conn.close()
        return ("exact", grants)

    if name == "FifoChain":
        got = pump(conn, {0: list(range(2 * N))}, {0: 2 * N})
        return ("exact", got[0])

    if name == "SequencedMerger":
        got = pump(conn, {i: [f"p{i}r{r}" for r in range(ROUNDS)]
                          for i in range(N)}, {i: ROUNDS for i in range(N)})
        return ("exact", [got[i] for i in range(N)])

    raise AssertionError(f"no scenario for {name}")


@pytest.mark.parametrize("name", library.names())
def test_direct_and_dsl_agree(name):
    kind_a, obs_a = run_scenario(build(name, "direct"), name)
    kind_b, obs_b = run_scenario(build(name, "dsl"), name)
    assert kind_a == kind_b
    if kind_a == "exact":
        assert obs_a == obs_b, (name, obs_a, obs_b)
    else:
        assert sorted(map(str, obs_a)) == sorted(map(str, obs_b)), name


@pytest.mark.parametrize("name", library.names())
def test_scenario_observation_shape(name):
    """Each scenario actually observed traffic (guards the matrix itself)."""
    kind, obs = run_scenario(build(name, "direct"), name)
    assert obs, (name, kind)
