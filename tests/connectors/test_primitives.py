"""Primitive arc types and their small automata (Fig. 6/7 + extended set)."""

import pytest

from repro.automata.constraint import Eq, Pred, V
from repro.connectors.graph import Arc
from repro.connectors.primitives import (
    PRIMITIVES,
    arity_suffix,
    build_automaton,
    graph_to_automata,
    primitive_type,
)
from repro.connectors.graph import ConnectorGraph, prim
from repro.util.errors import WellFormednessError


def build(type_, tails, heads, buf="q", **params):
    return build_automaton(
        Arc(type_, tuple(tails), tuple(heads), tuple(sorted(params.items()))), buf
    )


def test_sync():
    a = build("sync", ["x"], ["y"])
    assert a.n_states == 1
    (t,) = a.transitions
    assert t.label == frozenset({"x", "y"})
    assert Eq(V("x"), V("y")) in t.atoms


def test_lossysync_two_options():
    a = build("lossysync", ["x"], ["y"])
    labels = {t.label for t in a.transitions}
    assert labels == {frozenset({"x", "y"}), frozenset({"x"})}


def test_syncdrain_syncspout():
    d = build("syncdrain", ["x", "y"], [])
    assert d.transitions[0].label == frozenset({"x", "y"})
    s = build("syncspout", [], ["x", "y"])
    assert s.transitions[0].label == frozenset({"x", "y"})


def test_merger_one_transition_per_tail():
    a = build("merger", ["x", "y", "z"], ["h"])
    assert len(a.transitions) == 3
    assert all("h" in t.label for t in a.transitions)


def test_replicator_single_joint_transition():
    a = build("replicator", ["t"], ["h1", "h2", "h3"])
    (t,) = a.transitions
    assert t.label == frozenset({"t", "h1", "h2", "h3"})
    assert len(t.atoms) == 3


def test_router_exclusive():
    a = build("router", ["t"], ["h1", "h2"])
    assert len(a.transitions) == 2
    for t in a.transitions:
        assert len(t.label) == 2  # t plus exactly one head


def test_seq_cyclic_states():
    a = build("seq", ["v1", "v2", "v3"], [])
    assert a.n_states == 3
    targets = {t.source: t.target for t in a.transitions}
    assert targets == {0: 1, 1: 2, 2: 0}


def test_fifo1_two_states_with_buffer():
    a = build("fifo1", ["x"], ["y"], buf="mybuf")
    assert a.n_states == 2
    assert a.initial == 0
    assert a.buffers[0].name == "mybuf"
    assert a.buffers[0].capacity == 1


def test_fifo1_full_starts_full():
    a = build("fifo1_full", ["x"], ["y"], initial="tok")
    assert a.initial == 1
    assert a.buffers[0].initial == ("tok",)


def test_fifon_state_count():
    a = build("fifon", ["x"], ["y"], capacity=4)
    assert a.n_states == 5
    assert a.buffers[0].capacity == 4


def test_fifon_requires_capacity():
    with pytest.raises(WellFormednessError):
        build("fifon", ["x"], ["y"])


def test_fifo_unbounded_single_state():
    a = build("fifo", ["x"], ["y"])
    assert a.n_states == 1
    assert a.buffers[0].capacity is None


def test_filter_requires_pred():
    with pytest.raises(WellFormednessError):
        build("filter", ["x"], ["y"])
    a = build("filter", ["x"], ["y"], pred="even")
    kinds = {tuple(type(at).__name__ for at in t.atoms) for t in a.transitions}
    assert any("Pred" in k for k in kinds)


def test_transform_requires_func():
    with pytest.raises(WellFormednessError):
        build("transform", ["x"], ["y"])


def test_arity_checked():
    with pytest.raises(WellFormednessError):
        build("sync", ["x", "y"], ["z"])
    with pytest.raises(WellFormednessError):
        build("merger", [], ["h"])
    with pytest.raises(WellFormednessError):
        build("syncdrain", ["x"], [])


def test_unknown_type_rejected():
    with pytest.raises(WellFormednessError):
        build_automaton(Arc("wormhole", ("a",), ("b",)), "q")


def test_primitive_type_resolution():
    assert primitive_type("sync").name == "sync"
    assert primitive_type("Fifo1").name == "fifo1"
    assert primitive_type("Repl2").name == "replicator"
    assert primitive_type("Seq2").name == "seq"
    assert primitive_type("Merg3").name == "merger"
    assert primitive_type("Router2").name == "router"
    assert primitive_type("Fifo3").name == "fifon"
    assert primitive_type("NoSuchThing") is None


def test_arity_suffix():
    assert arity_suffix("Seq2") == 2
    assert arity_suffix("Repl16") == 16
    assert arity_suffix("Sync") is None
    assert arity_suffix("Fifo3") == 3


def test_graph_to_automata_unique_buffers():
    g = (
        prim(Arc("fifo1", ("a",), ("b",)))
        | prim(Arc("fifo1", ("b",), ("c",)))
    )
    autos = graph_to_automata(g)
    names = [a.buffers[0].name for a in autos]
    assert len(set(names)) == 2


def test_all_registered_primitives_buildable():
    """Every registry entry constructs a valid automaton at minimal arity."""
    shapes = {
        "sync": (1, 1), "lossysync": (1, 1), "syncdrain": (2, 0),
        "syncspout": (0, 2), "merger": (2, 1), "replicator": (1, 2),
        "router": (1, 2), "filter": (1, 1), "transform": (1, 1),
        "seq": (2, 0), "fifo1": (1, 1), "fifo1_full": (1, 1),
        "fifon": (1, 1), "fifo": (1, 1),
    }
    assert set(shapes) == set(PRIMITIVES)
    for name, (nt, nh) in shapes.items():
        params = {}
        if name == "fifon":
            params["capacity"] = 2
        if name == "filter":
            params["pred"] = "true"
        if name == "transform":
            params["func"] = "identity"
        a = build(name, [f"t{i}" for i in range(nt)],
                  [f"h{i}" for i in range(nh)], **params)
        assert a.n_states >= 1
