"""Replay the checked-in fuzz corpus (``fuzz`` marker).

Every shrunk or feature-rich replay file in ``tests/fuzz/corpus/`` is
re-executed through the full mode matrix and must reproduce its recorded
outcome: ``"ok"`` replays stay convergent, ``"divergence"`` replays (which
carry an intentional injection) must still be caught by the oracle.  The
CI fuzz-smoke job selects these with ``-m fuzz``; they also run in tier-1.
"""

import pathlib

import pytest

from repro.fuzz.harness import run_all
from repro.fuzz.inject import INJECTIONS
from repro.fuzz.shrink import load_replay

pytestmark = pytest.mark.fuzz

CORPUS = sorted((pathlib.Path(__file__).parent / "corpus").glob("*.json"))


def test_corpus_is_populated():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_replay_matches_recorded_outcome(path):
    program, script, schedule, meta = load_replay(path)
    inject = INJECTIONS[meta["inject"]] if meta.get("inject") else None
    _, diffs = run_all(program, script, schedule, inject=inject)
    outcome = "divergence" if diffs else "ok"
    assert outcome == meta["expect"], diffs
