"""Generator and reference-simulator invariants (seeded, tier-1)."""

from repro.compiler.parametrized import compile_source
from repro.fuzz.gen import build_program, from_library, generate
from repro.fuzz.sim import RefSim, build_script, make_schedule, revalidate


def test_generate_is_pure():
    for seed in (0, 7, 23):
        a, b = generate(seed), generate(seed)
        assert a.dsl == b.dsl
        assert a.chains == b.chains
        assert a.channel_capacity == b.channel_capacity


def test_build_script_is_pure():
    program = generate(3)
    a = build_script(program, 3)
    b = build_script(program, 3)
    assert a.batches == b.batches
    assert a.flood_points == b.flood_points


def test_generated_programs_compile_with_coherent_boundary():
    for seed in range(10):
        program = generate(seed)
        proto = compile_source(program.dsl).protocol(program.protocol)
        bindings = proto.default_bindings({})
        tails, heads = proto.boundary_vertices(bindings)
        assert tuple(tails) == program.tails
        assert tuple(heads) == program.heads
        assert set(tails).isdisjoint(heads)
        assert tails and heads


def test_channelable_capacity_counts_fifo_slots_and_glue():
    # FifoChain(2) -fifo1-> FifoChain(3): 2 + 3 chain slots + 1 glue slot.
    program = build_program(
        ((("FifoChain", 2), ("FifoChain", 3)),), name="Pipe"
    )
    assert program.channelable
    assert program.channel_capacity == 6
    assert not from_library("Merger", 2).channelable


def test_channelable_program_fills_to_capacity_on_sim():
    """The packing argument: exactly ``channel_capacity`` sends complete
    without a receive, and one more is not consumable."""
    program = build_program(((("FifoChain", 2), ("FifoChain", 2)),))
    sim = RefSim(program)
    from repro.fuzz.sim import SimOp

    tail, head = program.tails[0], program.heads[0]
    for i in range(program.channel_capacity):
        assert sim.run_batch([SimOp("send", tail, i)]) is not None, i
    assert sim.run_batch([SimOp("send", tail, 99)]) is None
    assert sim.run_batch([SimOp("recv", head)]) == [("recv", head, 0)]


def test_revalidate_reproduces_script():
    for seed in (1, 4, 9):
        program = generate(seed)
        script = build_script(program, seed)
        if not script.batches:
            continue
        again = revalidate(program, script.batches)
        assert again is not None
        assert again.batches == script.batches
        assert again.flood_points == script.flood_points


def test_make_schedule_never_floods_channelable():
    for seed in range(40):
        program = generate(seed)
        script = build_script(program, seed)
        schedule = make_schedule(program, script, seed)
        if program.channelable:
            assert schedule.floods == ()
        for point in schedule.floods:
            assert point in script.flood_points
        if schedule.checkpoint_at is not None:
            assert 1 <= schedule.checkpoint_at < len(script.batches)
