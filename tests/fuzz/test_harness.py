"""Differential harness end-to-end: sweeps, floods, injection, chaos."""

import pytest

from repro.fuzz.gen import from_library, generate
from repro.fuzz.harness import run_all, run_connector_mode
from repro.fuzz.inject import INJECTIONS
from repro.fuzz.shrink import (
    load_replay,
    save_replay,
    shrink,
    to_replay,
)
from repro.fuzz.sim import Schedule, build_script, make_schedule


def test_small_seed_sweep_no_divergence():
    """A fixed slice of what ``python -m repro fuzz run`` explores."""
    ran = 0
    for seed in range(12):
        program = generate(seed)
        script = build_script(program, seed)
        if not script.batches:
            continue
        ran += 1
        schedule = make_schedule(program, script, seed)
        _, diffs = run_all(program, script, schedule)
        assert not diffs, f"seed {seed}: {diffs}"
    assert ran >= 8  # the sweep must actually exercise programs


def test_flood_is_shed_identically_in_every_mode():
    """A flood at a sim-proven point is shed (dead letter + completed op
    with shed outcome) in every engine mode, and the shed count is part of
    the compared surface."""
    program = from_library("Merger", 2)
    script = build_script(program, 0)
    assert script.flood_points, "Merger should have lone-send flood points"
    point = script.flood_points[0]
    schedule = Schedule(floods=(point,))
    results, diffs = run_all(program, script, schedule)
    assert not diffs
    for r in results:
        assert r.sheds == {point[1]: 1}, r.mode


def test_injected_scheduler_bug_is_caught_shrunk_and_replayable(tmp_path):
    """The oracle-power check from the ISSUE: doctor the regions engine's
    round-robin candidate window, catch the divergence, shrink it below 20
    DSL lines, and round-trip the replay file."""
    inject = INJECTIONS["rr_window"]
    caught = None
    for seed in range(8):
        program = generate(seed)
        script = build_script(program, seed)
        if not script.batches:
            continue
        schedule = make_schedule(program, script, seed)
        _, diffs = run_all(program, script, schedule, inject=inject)
        if diffs:
            caught = (program, script, schedule)
            break
    assert caught is not None, "rr_window injection never diverged"

    def still_fails(p, sc, sd):
        _, d = run_all(p, sc, sd, inject=inject)
        return bool(d)

    small = shrink(*caught, still_fails)
    assert len(small[0].dsl.splitlines()) <= 20
    assert len(small[1].batches) <= len(caught[1].batches)

    path = tmp_path / "repro.json"
    save_replay(path, to_replay(*small, seed=None, expect="divergence",
                                inject="rr_window"))
    program, script, schedule, meta = load_replay(path)
    assert meta["expect"] == "divergence"
    _, diffs = run_all(program, script, schedule,
                       inject=INJECTIONS[meta["inject"]])
    assert diffs, "shrunk replay no longer diverges"


def test_clean_modes_unaffected_by_injection_elsewhere():
    """run_all applies the injection only to inject_mode; a global-mode
    injection must still be caught by comparison against the regions modes."""
    program = from_library("FifoChain", 2)
    script = build_script(program, 1)
    assert script.batches
    _, diffs = run_all(program, script, Schedule(),
                       inject=INJECTIONS["rr_window"],
                       inject_mode="global-jit")
    # FifoChain scripts may or may not trip the narrowed window; what must
    # hold is that an *uninjected* run is clean.
    _, clean = run_all(program, script, Schedule())
    assert not clean


def test_run_connector_mode_never_raises_on_bad_schedule():
    """Failures surface as anomalies, not exceptions (harness contract)."""
    program = from_library("Merger", 2)
    script = build_script(program, 0)
    # checkpoint index past the end: silently no-op (loop never reaches it)
    result = run_connector_mode(program, script,
                                Schedule(checkpoint_at=10 ** 6),
                                "regions-jit")
    assert not result.anomalies


@pytest.mark.parametrize("seed", [1, 2])
def test_chaos_layer_clean(seed):
    from repro.fuzz.chaos import run_chaos

    assert run_chaos(seed) == []
