"""Tier-1 cross-product matrix: every library connector, every mode.

For each library connector at arity 2 and 3, a deterministic script is
derived on the reference simulator and executed under the full config
cross product —

    {global, regions} engine x {jit, aot} composition
        x metrics {on, off} x {no checkpoint, mid-run checkpoint/restore}

— sixteen configurations whose normalized observable surface (per-port
completion streams, per-port synchronization sets ordered by ``rseq``,
residual buffer contents) must be *identical*.  This is the ISSUE's
satellite matrix test: a fixed-seed, always-on slice of what the seeded
fuzzer (``python -m repro fuzz run``) explores randomly.
"""

import pytest

from repro.connectors import library
from repro.fuzz.gen import from_library
from repro.fuzz.harness import MODES, run_connector_mode
from repro.fuzz.sim import Schedule, build_script

#: Connectors whose deterministic walk is empty by design: LateAsyncRouter
#: routes via an *internal* nondeterministic choice, so every batch that
#: feeds it is ambiguous under the uniquely-enabled-step filter and the
#: exact-equality oracle does not apply (the chaos layer covers it).
AMBIGUOUS = {"LateAsyncRouter"}

CASES = [(name, n) for name in library.names() for n in (2, 3)]


def _script_for(program):
    """First seed (0..5) whose walk yields a script; scripts are seeded and
    cached per test run only through determinism, not state."""
    for seed in range(6):
        script = build_script(program, seed)
        if script.batches:
            return script
    return None


@pytest.mark.parametrize("name,n", CASES, ids=[f"{c}{n}" for c, n in CASES])
def test_matrix_identical_across_modes(name, n):
    try:
        library.build_graph(name, n)
    except Exception:
        pytest.skip(f"{name} has no arity-{n} instance")
    program = from_library(name, n)
    script = _script_for(program)
    if name in AMBIGUOUS:
        assert script is None, (
            f"{name} now yields deterministic scripts - remove it from "
            "AMBIGUOUS so the matrix covers it"
        )
        return
    assert script is not None, f"no deterministic script for {name}({n})"

    checkpoints = [None]
    if len(script.batches) >= 2:
        checkpoints.append(len(script.batches) // 2 or 1)

    baseline = None
    for mode in MODES:
        for metrics in (True, False):
            for cp in checkpoints:
                result = run_connector_mode(
                    program, script, Schedule(checkpoint_at=cp), mode,
                    metrics=metrics,
                )
                tag = f"{mode} metrics={metrics} cp={cp}"
                assert not result.anomalies, f"{tag}: {result.anomalies}"
                surface = (result.ports, result.sync_sets, result.buffers,
                           result.sheds)
                if baseline is None:
                    baseline = (tag, surface)
                else:
                    assert surface == baseline[1], (
                        f"{tag} diverged from {baseline[0]}"
                    )
