"""The command-line toolchain (python -m repro …)."""

import pathlib
import sys

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "SequencedMerger" in out
    assert len(out.strip().splitlines()) == 18


def test_compile_to_stdout(tmp_path, capsys):
    src = tmp_path / "pipe.reo"
    src.write_text("Pipe(a;b) = Fifo1(a;b)\n")
    assert main(["compile", str(src)]) == 0
    out = capsys.readouterr().out
    assert "def make_connector" in out


def test_compile_to_file(tmp_path, capsys):
    src = tmp_path / "pipe.reo"
    src.write_text("Pipe(a;b) = Fifo1(a;b)\n")
    out_py = tmp_path / "gen.py"
    assert main(["compile", str(src), "-o", str(out_py)]) == 0
    text = out_py.read_text()
    assert "PROTOCOL_NAME = 'Pipe'" in text
    # the generated module is importable and runnable
    import types

    mod = types.ModuleType("cli_gen")
    exec(compile(text, str(out_py), "exec"), mod.__dict__)
    conn = mod.make_connector()
    from repro.runtime.ports import mkports

    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send("v")
    assert ins[0].recv() == "v"
    conn.close()


def test_dot_graph(capsys):
    assert main(["dot", "graph", "Replicator", "3"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")


def test_dot_automaton(capsys):
    assert main(["dot", "automaton", "Merger", "2"]) == 0
    out = capsys.readouterr().out
    assert "digraph" in out and "->" in out


def test_run_program(tmp_path, capsys, monkeypatch):
    src = tmp_path / "prog.reo"
    src.write_text(
        "P(a;b) = Fifo1(a;b)\n"
        "main = P(x;y) among T.send(x) and T.recv(y)\n"
    )
    tasks = tmp_path / "cli_tasks_mod.py"
    tasks.write_text(
        "class T:\n"
        "    @staticmethod\n"
        "    def send(out):\n"
        "        out.send(41)\n"
        "    @staticmethod\n"
        "    def recv(inp):\n"
        "        return inp.recv() + 1\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    assert main(["run", str(src), "--tasks", "cli_tasks_mod"]) == 0
    out = capsys.readouterr().out
    assert "42" in out


def test_fig12_passthrough(capsys):
    assert main(["fig12", "--connector", "Replicator", "--ns", "2",
                 "--window", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Pie chart" in out


def test_fig13_passthrough(capsys):
    assert main(["fig13", "--program", "ep", "--classes", "S", "--ns", "2"]) == 0
    out = capsys.readouterr().out
    assert "EP, size S" in out


def test_verify_ok(tmp_path, capsys):
    src = tmp_path / "ok.reo"
    src.write_text("P(a;b) = Fifo1(a;b)\n")
    assert main(["verify", str(src)]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_problems(tmp_path, capsys):
    src = tmp_path / "bad.reo"
    src.write_text("Oops(a,b;c) = Sync(a;c)\n")
    assert main(["verify", str(src), "--protocol", "Oops"]) == 1
    out = capsys.readouterr().out
    assert "dead-port" in out


def test_obs_connector_prometheus(capsys):
    assert main(["obs", "--connector", "FifoChain", "-n", "3",
                 "--window", "0.05", "--format", "prometheus"]) == 0
    captured = capsys.readouterr()
    assert "repro_engine_steps_total" in captured.out
    assert 'connector="FifoChain"' in captured.out
    assert "scenario:" in captured.err


@pytest.mark.fault_stress
def test_obs_farm_all_formats(tmp_path, capsys, monkeypatch):
    import json

    assert main(["obs", "--example", "overload_shedding_farm",
                 "--format", "all", "-o", str(tmp_path)]) == 0
    err = capsys.readouterr().err
    assert "Perfetto" in err or "perfetto" in err
    assert (tmp_path / "obs-metrics.prom").exists()
    assert (tmp_path / "obs-metrics.json").exists()
    # the Chrome trace must be loadable: valid JSON with the traceEvents
    # array Perfetto expects, including the steps lane metadata
    doc = json.loads((tmp_path / "obs-trace.json").read_text())
    events = doc["traceEvents"]
    assert any(
        e["ph"] == "M" and e["args"].get("name") == "steps" for e in events
    )
    assert any(e["ph"] == "X" for e in events)
