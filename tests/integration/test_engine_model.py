"""Model-based engine test (hypothesis).

A FifoChain(k) connector must behave exactly like a bounded FIFO queue of
capacity k.  We drive a random interleaving of non-blocking operations and
check every observation against a reference ``deque`` model — state-machine
testing of the whole stack (DSL → compiler → JIT composition → engine).
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.connectors import library
from repro.runtime.ports import mkports

CAPACITY = 3


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["send", "recv"]), min_size=1, max_size=60))
def test_fifochain_equals_bounded_queue(ops):
    conn = library.connector("FifoChain", CAPACITY)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    model: deque = deque()
    counter = 0
    try:
        for op in ops:
            if op == "send":
                ok = outs[0].try_send(counter)
                expect_ok = len(model) < CAPACITY
                assert ok == expect_ok, (op, counter, list(model))
                if ok:
                    model.append(counter)
                    counter += 1
            else:
                ok, value = ins[0].try_recv()
                expect_ok = bool(model)
                assert ok == expect_ok, (op, list(model))
                if ok:
                    assert value == model.popleft()
    finally:
        conn.close()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["send", "recv"]), min_size=1, max_size=40),
       st.sampled_from(["aot", "jit"]))
def test_fifochain_model_both_compositions(ops, composition):
    conn = library.connector("FifoChain", 2, composition=composition)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    model: deque = deque()
    counter = 0
    try:
        for op in ops:
            if op == "send":
                ok = outs[0].try_send(counter)
                assert ok == (len(model) < 2)
                if ok:
                    model.append(counter)
                    counter += 1
            else:
                ok, value = ins[0].try_recv()
                assert ok == bool(model)
                if ok:
                    assert value == model.popleft()
    finally:
        conn.close()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=1, max_size=30))
def test_sequencer_model(turns):
    """Sequencer(3) == a modulo-3 turn counter: only the current turn's
    party can send."""
    conn = library.connector("Sequencer", 3)
    outs, _ = mkports(3, 0)
    conn.connect(outs, [])
    turn = 0
    try:
        for party in turns:
            ok = outs[party].try_send("x")
            assert ok == (party == turn)
            if ok:
                turn = (turn + 1) % 3
    finally:
        conn.close()
