"""Cross-strategy equivalence matrix.

For a sample of library connectors, the observable protocol must be
identical across: direct graph vs. DSL; existing vs. new approach; JIT vs.
AOT; monolithic vs. partitioned; unbounded vs. bounded state cache; and
interpreter vs. generated code.
"""

import types

import pytest

from repro.automata.lazy import LRUCache
from repro.compiler import compile_existing, compile_source, generate_python
from repro.compiler.fromgraph import connector_from_graph
from repro.connectors import library

from tests.conftest import pump


def strategies(name, n):
    """Yield (label, connector factory) pairs for every strategy."""
    yield "graph-jit", lambda: connector_from_graph(library.build_graph(name, n))
    yield "dsl-jit", lambda: library.connector(name, n)
    yield "dsl-aot", lambda: library.connector(name, n, composition="aot")
    yield "dsl-partitioned", lambda: library.connector(
        name, n, use_partitioning=True
    )
    yield "dsl-bounded-cache", lambda: library.connector(
        name, n, cache_factory=lambda: LRUCache(4)
    )
    yield "dsl-maximal", lambda: library.connector(name, n, step_mode="maximal")

    def existing():
        compiled = compile_existing(library.dsl_source(name, n), name, sizes=n)
        return compiled.instantiate_connector()

    yield "existing", existing

    def generated():
        src = generate_python(
            compile_source(library.dsl_source(name, n)).protocol(name)
        )
        mod = types.ModuleType("gen")
        exec(compile(src, "<gen>", "exec"), mod.__dict__)
        return mod.make_connector(sizes=n)

    yield "generated", generated


@pytest.mark.parametrize("label_factory", list(strategies("SequencedMerger", 3)),
                         ids=lambda lf: lf[0])
def test_sequenced_merger_equivalence(label_factory):
    _label, factory = label_factory
    conn = factory()
    got = pump(
        conn,
        {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]},
        {0: 2, 1: 2, 2: 2},
    )
    assert got == {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]}


@pytest.mark.parametrize("label_factory", list(strategies("Alternator", 2)),
                         ids=lambda lf: lf[0])
def test_alternator_equivalence(label_factory):
    _label, factory = label_factory
    conn = factory()
    got = pump(conn, {0: ["a0", "a1"], 1: ["b0", "b1"]}, {0: 4})
    assert got[0] == ["a0", "b0", "a1", "b1"]


@pytest.mark.parametrize("label_factory", list(strategies("Replicator", 3)),
                         ids=lambda lf: lf[0])
def test_replicator_equivalence(label_factory):
    _label, factory = label_factory
    conn = factory()
    got = pump(conn, {0: [1, 2]}, {0: 2, 1: 2, 2: 2})
    assert got[0] == got[1] == got[2] == [1, 2]


@pytest.mark.parametrize("label_factory", list(strategies("FifoChain", 3)),
                         ids=lambda lf: lf[0])
def test_fifo_chain_equivalence(label_factory):
    _label, factory = label_factory
    conn = factory()
    got = pump(conn, {0: list(range(7))}, {0: 7})
    assert got[0] == list(range(7))


def test_graph2text_roundtrip_behaviour():
    """Graph → text → compile must behave like the original graph."""
    from repro.lang.graph2text import graph_to_text

    built = library.build_graph("SequencedMerger", 2)
    text = graph_to_text(built.graph, built.tails, built.heads, name="RT")
    conn = compile_source(text).instantiate_connector("RT")
    got = pump(conn, {0: ["a"], 1: ["b"]}, {0: 1, 1: 1})
    assert got == {0: ["a"], 1: ["b"]}
