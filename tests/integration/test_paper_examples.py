"""End-to-end reproductions of the paper's running examples.

Example 1 (§I): "First task A communicates a message to task C, then task B
communicates a message to C" — realized (a) in the basic Foster–Chandy
model with an auxiliary communication (Fig. 2), (b) as a connector built
from the Fig. 5 graph, (c) from the Fig. 8 textual program, (d) from the
parametrized Fig. 9 program at several N, with both compilation approaches.
"""

import threading

import pytest

from repro.compiler import compile_existing, compile_source, run_main
from repro.connectors import library
from repro.compiler.fromgraph import connector_from_graph
from repro.runtime.channels import channel
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup

from tests.conftest import JOIN_TIMEOUT

FIG8 = """
ConnectorEx11a(tl1,tl2;hd1,hd2) =
  Repl2(tl1;prev1,v1) mult Repl2(tl2;prev2,v2)
  mult Fifo1(v1;w1) mult Fifo1(v2;w2)
  mult Repl2(w1;next1,hd1) mult Repl2(w2;next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

ConnectorEx11b(tl1,tl2;hd1,hd2) =
  X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

main = ConnectorEx11a(aOut,bOut;cIn1,cIn2) among
  Tasks.a(aOut) and Tasks.b(bOut) and Tasks.c(cIn1,cIn2)
"""


def run_ex1_with_connector(conn):
    """Tasks A, B, C of Ex. 3/Fig. 4; returns C's observation order."""
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    events = []

    def a(out):
        out.send("msg-a")

    def b(out):
        out.send("msg-b")

    def c(in1, in2):
        events.append(in1.recv())
        events.append(in2.recv())

    try:
        with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
            g.spawn(a, outs[0])
            g.spawn(b, outs[1])
            g.spawn(c, ins[0], ins[1])
    finally:
        conn.close()
    return events


def test_ex1_fig5_graph():
    built = library.build_graph("SequencedMerger", 2)
    events = run_ex1_with_connector(connector_from_graph(built))
    assert events == ["msg-a", "msg-b"]


def test_ex1_fig8_textual_both_definitions():
    program = compile_source(FIG8)
    for name in ("ConnectorEx11a", "ConnectorEx11b"):
        conn = program.instantiate_connector(name)
        assert run_ex1_with_connector(conn) == ["msg-a", "msg-b"]


def test_ex1_fig8_main():
    events = []

    def a(out):
        out.send("msg-a")

    def b(out):
        out.send("msg-b")

    def c(in1, in2):
        events.append(in1.recv())
        events.append(in2.recv())

    run_main(
        compile_source(FIG8),
        {"Tasks.a": a, "Tasks.b": b, "Tasks.c": c},
    )
    assert events == ["msg-a", "msg-b"]


def test_ex1_no_auxiliary_needed():
    """Point (i) of Ex. 3: B's send blocks until A's delivery completed —
    without any auxiliary communication in the tasks."""
    conn = compile_source(FIG8).instantiate_connector("ConnectorEx11a")
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    assert not outs[1].try_send("msg-b")  # B cannot go first
    outs[0].send("msg-a")
    assert not outs[1].try_send("msg-b")  # nor before C received A's msg
    assert ins[0].recv() == "msg-a"
    outs[1].send("msg-b")
    assert ins[1].recv() == "msg-b"
    conn.close()


@pytest.mark.parametrize("n", [1, 2, 4])
@pytest.mark.parametrize("approach", ["new-jit", "new-aot", "existing",
                                      "partitioned"])
def test_ex8_fig9_all_approaches(fig9_source, n, approach):
    """Ex. 8: the parametrized running example under every strategy."""
    if approach == "existing":
        conn = compile_existing(
            fig9_source, "ConnectorEx11N", sizes=n
        ).instantiate_connector()
    else:
        options = {
            "new-jit": {},
            "new-aot": {"composition": "aot"},
            "partitioned": {"use_partitioning": True},
        }[approach]
        conn = compile_source(fig9_source).instantiate_connector(
            "ConnectorEx11N", sizes=n, **options
        )
    outs, ins = mkports(n, n)
    conn.connect(outs, ins)
    rounds = 2
    order = []

    def pro(i, out):
        for r in range(rounds):
            out.send((i, r))

    def con():
        for r in range(rounds):
            for p in ins:
                order.append(p.recv())

    try:
        with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
            for i, out in enumerate(outs, 1):
                g.spawn(pro, i, out)
            g.spawn(con)
    finally:
        conn.close()
    assert order == [(i, r) for r in range(rounds) for i in range(1, n + 1)]


def test_fig2_channel_version_needs_auxiliary():
    """Ex. 2 (Fig. 2): in the basic model the ordering holds only via the
    auxiliary channel; dropping it can violate Ex. 1 (B may arrive first) —
    here we check the *with-auxiliary* version enforces it."""
    ao, ci1 = channel()
    bo, ci2 = channel()
    x, y = channel()
    events = []
    barrier = threading.Barrier(2)  # A and B start together

    def a(out):
        barrier.wait()
        out.send("msg-a")

    def b(y_in, out):
        barrier.wait()
        y_in.recv()
        out.send("msg-b")

    def c(in1, in2, x_out):
        events.append(in1.recv())
        x_out.send(0)
        events.append(in2.recv())

    with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
        g.spawn(a, ao)
        g.spawn(b, y, bo)
        g.spawn(c, ci1, ci2, x)
    assert events == ["msg-a", "msg-b"]
