"""Concurrency stress: many parties, many messages, no loss/duplication.

These are the suite's 'soak' tests: they hammer the engine lock, the drain
loop, the round-robin fairness cursor, and the JIT cache under real thread
contention, asserting exact message accounting at the end.
"""

import threading
from collections import Counter

import pytest

from repro.connectors import library
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup

N_PRODUCERS = 8
PER_PRODUCER = 300


def test_merger_no_loss_no_duplication():
    conn = library.connector("Merger", N_PRODUCERS)
    outs, ins = mkports(N_PRODUCERS, 1)
    conn.connect(outs, ins)
    total = N_PRODUCERS * PER_PRODUCER

    def producer(i):
        for k in range(PER_PRODUCER):
            outs[i].send((i, k))

    received: list = []

    def consumer():
        for _ in range(total):
            received.append(ins[0].recv())

    with TaskGroup(join_timeout=120) as g:
        for i in range(N_PRODUCERS):
            g.spawn(producer, i)
        g.spawn(consumer)
    conn.close()

    counts = Counter(received)
    assert len(received) == total
    assert all(v == 1 for v in counts.values())  # no duplication
    # per-producer order preserved
    for i in range(N_PRODUCERS):
        ks = [k for (p, k) in received if p == i]
        assert ks == list(range(PER_PRODUCER))


def test_replicator_consistent_broadcast():
    n_consumers = 6
    rounds = 300
    conn = library.connector("Replicator", n_consumers)
    outs, ins = mkports(1, n_consumers)
    conn.connect(outs, ins)
    got: list[list] = [[] for _ in range(n_consumers)]

    def consumer(i):
        for _ in range(rounds):
            got[i].append(ins[i].recv())

    with TaskGroup(join_timeout=120) as g:
        for i in range(n_consumers):
            g.spawn(consumer, i)
        g.spawn(lambda: [outs[0].send(k) for k in range(rounds)])
    conn.close()

    for i in range(n_consumers):
        assert got[i] == list(range(rounds))


def test_router_conservation_under_contention():
    n_consumers = 6
    total = 1200
    conn = library.connector("Router", n_consumers)
    outs, ins = mkports(1, n_consumers)
    conn.connect(outs, ins)
    received: list = []
    lock = threading.Lock()
    done = threading.Event()

    def consumer(i):
        from repro.util.errors import PortClosedError

        try:
            while True:
                v = ins[i].recv()
                with lock:
                    received.append(v)
                    if len(received) == total:
                        done.set()
        except PortClosedError:
            pass

    with TaskGroup(join_timeout=120) as g:
        for i in range(n_consumers):
            g.spawn(consumer, i)
        g.spawn(lambda: [outs[0].send(k) for k in range(total)]).join(60)
        assert done.wait(30)
        conn.close()

    assert sorted(received) == list(range(total))


def test_sequenced_merger_order_under_contention():
    n = 6
    rounds = 60
    conn = library.connector("SequencedMerger", n)
    outs, ins = mkports(n, n)
    conn.connect(outs, ins)
    order: list = []

    def producer(i):
        for r in range(rounds):
            outs[i].send((i, r))

    def consumer():
        for _ in range(rounds):
            for p in ins:
                order.append(p.recv())

    with TaskGroup(join_timeout=120) as g:
        for i in range(n):
            g.spawn(producer, i)
        g.spawn(consumer)
    conn.close()

    expect = [(i, r) for r in range(rounds) for i in range(n)]
    assert order == expect


@pytest.mark.parametrize("options", [{}, {"use_partitioning": True}])
def test_long_fifo_chain_throughput_integrity(options):
    conn = library.connector("FifoChain", 8, **options)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    total = 2000

    with TaskGroup(join_timeout=120) as g:
        g.spawn(lambda: [outs[0].send(k) for k in range(total)])
        h = g.spawn(lambda: [ins[0].recv() for _ in range(total)])
    conn.close()
    assert h.result == list(range(total))
