"""The full Fig. 11 workflow, end to end.

"The intended workflow is, first, to draw a connector in the graphical
syntax; …  Then, translate the (nonparametrized) graphical syntax to
(nonparametrized) textual syntax.  Finally, parametrize the textual
representation" — and compile, generate code, and run.
"""

import types

from repro.compiler import compile_source, generate_python
from repro.connectors import library
from repro.lang.graph2text import graph_to_text

from tests.conftest import pump


def test_draw_translate_parametrize_compile_run():
    # 1. "draw" the N=2 instance as a graph (the graphical representation)
    built = library.build_graph("SequencedMerger", 2)

    # 2. graph-to-text: the nonparametrized textual representation
    text = graph_to_text(built.graph, built.tails, built.heads, name="Ex1")
    conn = compile_source(text).instantiate_connector("Ex1")
    got = pump(conn, {0: ["a"], 1: ["b"]}, {0: 1, 1: 1})
    assert got == {0: ["a"], 1: ["b"]}

    # 3. parametrize: the programmer generalizes the text by hand (here:
    #    the library's parametrized source is that generalization)
    parametrized = library.dsl_source("SequencedMerger")
    program = compile_source(parametrized)

    # 4. one compilation, several sizes, same protocol
    for n in (2, 4):
        conn = program.instantiate_connector("SequencedMerger", sizes=n)
        sends = {i: [f"p{i}"] for i in range(n)}
        got = pump(conn, sends, {i: 1 for i in range(n)})
        assert got == {i: [f"p{i}"] for i in range(n)}

    # 5. text-to-code: the generated module behaves identically
    module = types.ModuleType("gen")
    code = generate_python(program.protocol("SequencedMerger"))
    exec(compile(code, "<gen>", "exec"), module.__dict__)
    conn = module.make_connector(sizes=3)
    got = pump(conn, {0: ["x"], 1: ["y"], 2: ["z"]}, {0: 1, 1: 1, 2: 1})
    assert got == {0: ["x"], 1: ["y"], 2: ["z"]}


def test_verification_gate_in_workflow(fig9_source):
    """'Once everything is shown to be in order, the Reo compiler can be
    used to generate lower-level code' (§II) — run the verification pass
    before instantiation, as the workflow prescribes."""
    from repro.automata.verify import verify_protocol

    program = compile_source(fig9_source)
    protocol = program.protocol("ConnectorEx11N")
    for n in (1, 2, 4):
        report = verify_protocol(protocol, sizes=n)
        assert report.ok, report.render()
    conn = protocol.instantiate_connector(sizes=2)
    got = pump(conn, {0: ["a"], 1: ["b"]}, {0: 1, 1: 1})
    assert got == {0: ["a"], 1: ["b"]}
