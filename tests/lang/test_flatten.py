"""Flattening (§IV.C): in-lining, renaming, substitution, scoping.

Includes the paper's Ex. 9: flattening ConnectorEx11b yields ConnectorEx11a
up to associativity/commutativity of mult and renaming of locals.
"""

import pytest

from repro.lang import ast
from repro.lang.flatten import FIf, FList, FPrim, FProd, NameExpr, flatten
from repro.lang.parser import parse
from repro.util.errors import ScopeError, WellFormednessError


def prims_of(node):
    """All FPrims in a flattened tree (ignoring structure)."""
    if isinstance(node, FPrim):
        return [node]
    if isinstance(node, FList):
        return [p for item in node.items for p in prims_of(item)]
    if isinstance(node, FProd):
        return prims_of(node.body)
    if isinstance(node, FIf):
        out = prims_of(node.then)
        if node.els is not None:
            out += prims_of(node.els)
        return out
    raise TypeError(node)


def shape(node):
    """(ptype, tails-canonical, heads-canonical) multiset, formals kept."""
    out = []
    for p in prims_of(node):
        out.append(
            (
                p.ptype,
                tuple(t.canonical() for t in p.tails),
                tuple(h.canonical() for h in p.heads),
            )
        )
    return sorted(out)


FIG8 = """
ConnectorEx11a(tl1,tl2;hd1,hd2) =
  Repl2(tl1;prev1,v1) mult Repl2(tl2;prev2,v2)
  mult Fifo1(v1;w1) mult Fifo1(v2;w2)
  mult Repl2(w1;next1,hd1) mult Repl2(w2;next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

ConnectorEx11b(tl1,tl2;hd1,hd2) =
  X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)
"""


def test_ex9_flattening_b_equals_a_up_to_renaming():
    prog = parse(FIG8)
    fa = flatten(prog, "ConnectorEx11a")
    fb = flatten(prog, "ConnectorEx11b")
    sa, sb = shape(fa), shape(fb)
    assert len(sa) == len(sb) == 8
    # same primitive types and same boundary vertices in each position;
    # local names differ, so compare after erasing locals
    def erase(s):
        def e(names):
            return tuple(
                n if not any(c in n for c in "$") else "<local>" for n in names
            )
        return sorted((p, e(t), e(h)) for p, t, h in s)
    assert erase(sa) == erase(sb)


def test_flatten_primitive_only_def():
    prog = parse("P(a;b) = Fifo1(a;b)")
    f = flatten(prog, "P")
    (p,) = prims_of(f)
    assert p.ptype == "fifo1"
    assert p.tails[0] == NameExpr("a", (), formal=True)
    assert p.buffer is not None


def test_locals_renamed_apart_between_instantiations():
    prog = parse(FIG8)
    fb = flatten(prog, "ConnectorEx11b")
    fifo_buffers = [p.buffer.canonical() for p in prims_of(fb) if p.ptype == "fifo1"]
    assert len(set(fifo_buffers)) == 2
    # the two X instances have distinct local v/w vertices
    fifos = [p for p in prims_of(fb) if p.ptype == "fifo1"]
    assert fifos[0].tails[0].canonical() != fifos[1].tails[0].canonical()


def test_prod_variable_renamed_and_bound(fig9_source):
    prog = parse(fig9_source)
    f = flatten(prog, "ConnectorEx11N")
    assert isinstance(f, FIf)
    prods = [n for n in f.els.items if isinstance(n, FProd)]
    assert len(prods) == 2
    # iteration variable renamed apart but consistently used in the body
    p0 = prods[0]
    body_prims = prims_of(p0.body)
    used = {
        str(i)
        for prim in body_prims
        for ne in prim.tails + prim.heads
        for i in ne.indices
    }
    assert any(p0.var in u for u in used)


def test_locals_inside_prod_get_iteration_index(fig9_source):
    """X's locals v and w, inlined under prod(i), must be per-iteration."""
    prog = parse(fig9_source)
    f = flatten(prog, "ConnectorEx11N")
    prods = [n for n in f.els.items if isinstance(n, FProd)]
    fifo = next(p for p in prims_of(prods[0].body) if p.ptype == "fifo1")
    # fifo's tail is X's local v -> base contains $, indexed by the prod var
    assert "$" in fifo.tails[0].base
    assert len(fifo.tails[0].indices) == 1


def test_array_slice_offsets():
    src = """
Inner(x[];y) = Sync(x[1];y)
Outer(t[];h) = Inner(t[2..#t];h)
"""
    prog = parse(src)
    f = flatten(prog, "Outer")
    (p,) = prims_of(f)
    # Inner's x[1] must resolve to t[(2-1)+1] == t[2] (shifted by the slice)
    idx = p.tails[0].indices[0]
    from repro.lang.interp import Env, eval_aexpr

    assert p.tails[0].base == "t"
    assert eval_aexpr(idx, Env(lengths={"t": 5})) == 2


def test_length_of_slice():
    src = """
Inner(x[];y) = Sync(x[#x];y)
Outer(t[];h) = Inner(t[2..#t-1];h)
"""
    prog = parse(src)
    (p,) = prims_of(flatten(prog, "Outer"))
    from repro.lang.interp import Env, eval_aexpr

    # #x == (#t-1) - 2 + 1 == #t - 2; x[#x] == t[2-1 + #t-2] == t[#t - 1]
    assert eval_aexpr(p.tails[0].indices[0], Env(lengths={"t": 6})) == 5


def test_recursion_rejected():
    src = "R(a;b) = R(a;b)"
    with pytest.raises(ScopeError, match="recursive"):
        flatten(parse(src), "R")


def test_mutual_recursion_rejected():
    src = "A(a;b) = B(a;b)\nB(a;b) = A(a;b)"
    with pytest.raises(ScopeError, match="recursive"):
        flatten(parse(src), "A")


def test_unknown_constituent():
    with pytest.raises(ScopeError, match="unknown constituent"):
        flatten(parse("D(a;b) = Mystery(a;b)"), "D")


def test_arity_mismatch():
    src = "X(a;b) = Sync(a;b)\nD(a;b) = X(a,a;b)"
    with pytest.raises(ScopeError, match="arity"):
        flatten(parse(src), "D")


def test_array_used_as_scalar_rejected():
    with pytest.raises(ScopeError):
        flatten(parse("D(t[];h) = Sync(t;h)"), "D")


def test_scalar_indexed_rejected():
    with pytest.raises(ScopeError):
        flatten(parse("D(t;h) = Sync(t[1];h)"), "D")


def test_iteration_var_as_vertex_rejected():
    with pytest.raises(ScopeError):
        flatten(parse("D(t[];h) = prod (i:1..#t) Sync(i;h)"), "D")


def test_unbound_arith_var_rejected():
    with pytest.raises(ScopeError, match="unbound"):
        flatten(parse("D(t[];h) = Sync(t[k];h)"), "D")


def test_length_of_scalar_rejected():
    with pytest.raises(ScopeError):
        flatten(parse("D(t;h) = prod (i:1..#t) Sync(t;h)"), "D")


def test_local_scalar_vs_array_conflict():
    with pytest.raises(ScopeError, match="scalar and as array"):
        flatten(parse("D(a;b) = Sync(a;v) mult Sync(v[1];b)"), "D")


def test_arity_suffix_mismatch():
    with pytest.raises(WellFormednessError, match="suffix"):
        flatten(parse("D(a;b) = Repl3(a;b,c)"), "D")


def test_fifon_capacity_via_suffix_and_cparam():
    prog = parse("D(a;b) = Fifo3(a;v) mult FifoN<2>(v;b)")
    ps = prims_of(flatten(prog, "D"))
    caps = sorted(dict(p.params)["capacity"] for p in ps)
    assert caps == [2, 3]


def test_filter_needs_cparam():
    with pytest.raises(WellFormednessError, match="predicate"):
        flatten(parse("D(a;b) = Filter(a;b)"), "D")


def test_user_def_shadows_nothing_but_primitives_win_when_undefined():
    """A def named like a primitive takes precedence over the primitive."""
    src = "Sync(a;b) = Fifo1(a;b)\nD(x;y) = Sync(x;y)"
    ps = prims_of(flatten(parse(src), "D"))
    assert ps[0].ptype == "fifo1"
