"""Graph-to-text translation (Fig. 11) and its round trip.

The translator output must parse, compile, and behave like the original
graph — checked structurally here, behaviourally in the integration tests.
"""

import pytest

from repro.compiler.fromgraph import compile_graph
from repro.connectors import library
from repro.lang.flatten import flatten
from repro.lang.graph2text import graph_to_text
from repro.lang.parser import parse
from repro.util.errors import WellFormednessError


def test_emits_parseable_definition():
    built = library.build_graph("SequencedMerger", 2)
    text = graph_to_text(built.graph, built.tails, built.heads, name="Ex1")
    prog = parse(text)
    assert "Ex1" in prog.defs
    d = prog.defs["Ex1"]
    assert len(d.tails) == 2 and len(d.heads) == 2


@pytest.mark.parametrize(
    "name,n", [("Merger", 3), ("Replicator", 2), ("Sequencer", 2),
               ("Lock", 2), ("FifoChain", 3), ("Alternator", 2)]
)
def test_roundtrip_preserves_primitive_multiset(name, n):
    built = library.build_graph(name, n)
    text = graph_to_text(built.graph, built.tails, built.heads, name="RT")
    prog = parse(text)
    flat = flatten(prog, "RT")

    from tests.lang.test_flatten import prims_of

    ps = prims_of(flat)
    assert sorted(p.ptype for p in ps) == sorted(a.type for a in built.graph.arcs)
    # vertex names are preserved up to the flattener's local-scope prefix
    # (boundary vertices verbatim; internal ones become scoped locals)
    names = {
        ne.canonical().rsplit("$", 1)[-1] for p in ps for ne in p.tails + p.heads
    }
    assert names == set(built.graph.vertices)


def test_roundtrip_compiles_to_same_small_automata_count():
    built = library.build_graph("SequencedMerger", 3)
    text = graph_to_text(built.graph, built.tails, built.heads, name="RT")
    from repro.compiler import compile_source

    compiled = compile_source(text)
    bindings = {p.name: p.name for p in compiled.protocol("RT").params}
    autos = compiled.protocol("RT").automata_for(bindings, granularity="small")
    assert len(autos) == len(compile_graph(built))


def test_rejects_unspeakable_vertex_names():
    from repro.connectors.graph import Arc, prim

    g = prim(Arc("sync", ("a$0",), ("b",)))
    with pytest.raises(WellFormednessError, match="identifier"):
        graph_to_text(g, ("a$0",), ("b",))


def test_rejects_empty_graph():
    from repro.connectors.graph import ConnectorGraph

    with pytest.raises(WellFormednessError):
        graph_to_text(ConnectorGraph(), (), ())


def test_spellings_cover_parameterized_arcs():
    from repro.connectors.graph import Arc, prim

    g = (
        prim(Arc("fifon", ("a",), ("b",), (("capacity", 3),)))
        | prim(Arc("filter", ("b",), ("c",), (("pred", "even"),)))
        | prim(Arc("transform", ("c",), ("d",), (("func", "inc"),)))
    )
    text = graph_to_text(g, ("a",), ("d",))
    assert "Fifo3" in text
    assert "Filter<even>" in text
    assert "Transform<inc>" in text
    parse(text)
