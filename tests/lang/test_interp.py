"""Expression evaluation: arithmetic, booleans, environments."""

import pytest

from repro.lang import ast
from repro.lang.interp import Env, eval_aexpr, eval_bexpr
from repro.util.errors import ScopeError


def A(src: str) -> ast.AExpr:
    """Parse an arithmetic expression via a tiny wrapper definition."""
    from repro.lang.parser import parse

    prog = parse(f"D(t[];h) = prod (i:{src}..{src}) Sync(t[1];h)")
    return prog.defs["D"].body.lo


def test_numbers_and_ops():
    env = Env()
    assert eval_aexpr(A("1+2*3"), env) == 7
    assert eval_aexpr(A("(1+2)*3"), env) == 9
    assert eval_aexpr(A("7/2"), env) == 3  # integer division
    assert eval_aexpr(A("7%3"), env) == 1
    assert eval_aexpr(A("-4+1"), env) == -3


def test_variables_and_lengths():
    env = Env(variables={"i": 5}, lengths={"tl": 8})
    assert eval_aexpr(ast.Var("i"), env) == 5
    assert eval_aexpr(ast.Len("tl"), env) == 8
    assert eval_aexpr(ast.BinOp("-", ast.Len("tl"), ast.Var("i")), env) == 3


def test_bind_is_persistent_functional():
    env = Env(variables={"i": 1})
    child = env.bind("j", 2)
    assert eval_aexpr(ast.Var("j"), child) == 2
    with pytest.raises(ScopeError):
        eval_aexpr(ast.Var("j"), env)


def test_unbound_errors():
    with pytest.raises(ScopeError, match="unbound"):
        eval_aexpr(ast.Var("nope"), Env())
    with pytest.raises(ScopeError, match="length"):
        eval_aexpr(ast.Len("nope"), Env())


def test_division_by_zero():
    with pytest.raises(ScopeError, match="zero"):
        eval_aexpr(ast.BinOp("/", ast.Num(1), ast.Num(0)), Env())
    with pytest.raises(ScopeError, match="zero"):
        eval_aexpr(ast.BinOp("%", ast.Num(1), ast.Num(0)), Env())


def test_comparisons():
    env = Env()
    for op, expect in [("==", False), ("!=", True), ("<", True),
                       ("<=", True), (">", False), (">=", False)]:
        assert eval_bexpr(ast.Cmp(op, ast.Num(1), ast.Num(2)), env) is expect


def test_boolean_ops():
    env = Env()
    t = ast.Cmp("==", ast.Num(1), ast.Num(1))
    f = ast.Cmp("==", ast.Num(1), ast.Num(2))
    assert eval_bexpr(ast.BoolOp("&&", t, t), env)
    assert not eval_bexpr(ast.BoolOp("&&", t, f), env)
    assert eval_bexpr(ast.BoolOp("||", f, t), env)
    assert eval_bexpr(ast.NotOp(f), env)


def test_short_circuit():
    """&& must not evaluate the right side when the left is false."""
    env = Env()
    f = ast.Cmp("==", ast.Num(1), ast.Num(2))
    poison = ast.Cmp("==", ast.BinOp("/", ast.Num(1), ast.Num(0)), ast.Num(0))
    assert not eval_bexpr(ast.BoolOp("&&", f, poison), env)
