"""Tokenizer: token kinds, positions, comments, errors."""

import pytest

from repro.lang.lexer import Token, tokenize
from repro.util.errors import ParseError


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


def test_identifiers_and_keywords():
    assert kinds("foo mult if prod") == [
        ("ident", "foo"),
        ("keyword", "mult"),
        ("keyword", "if"),
        ("keyword", "prod"),
    ]


def test_all_keywords():
    for kw in ("mult", "prod", "if", "else", "main", "among", "and", "forall"):
        assert kinds(kw) == [("keyword", kw)]


def test_numbers():
    assert kinds("42 007") == [("number", "42"), ("number", "007")]


def test_two_char_operators():
    assert [t for _, t in kinds("... == != <= >= && ||")] == [
        "..", ".", "==", "!=", "<=", ">=", "&&", "||",
    ]


def test_range_vs_dots():
    assert [t for _, t in kinds("1..3")] == ["1", "..", "3"]
    assert [t for _, t in kinds("a.b")] == ["a", ".", "b"]


def test_hash_length():
    assert kinds("#tl") == [("punct", "#"), ("ident", "tl")]


def test_comments_stripped():
    assert kinds("a // comment here\nb") == [("ident", "a"), ("ident", "b")]


def test_positions():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)


def test_illegal_character():
    with pytest.raises(ParseError, match="illegal"):
        tokenize("a ~ b")


def test_eof_token():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind == "eof"


def test_underscore_identifiers():
    assert kinds("a_b _x") == [("ident", "a_b"), ("ident", "_x")]


def test_token_str():
    assert str(Token("ident", "x", 1, 1)) == "'x'"
    assert str(Token("eof", "", 1, 1)) == "end of input"
