"""Normal form (§IV.C, Ex. 10): section ordering and recursion."""

from repro.lang.flatten import FIf, FList, FPrim, FProd, flatten
from repro.lang.normalize import normalize
from repro.lang.parser import parse


def test_sections_ordered(fig9_source):
    prog = parse(fig9_source)
    nf = normalize(flatten(prog, "ConnectorEx11N"))
    # top level of Fig. 9 is a single conditional
    assert nf.prims == [] and nf.prods == [] and len(nf.conds) == 1
    cond = nf.conds[0]
    # then-branch: one primitive
    assert len(cond.then.prims) == 1 and not cond.then.prods
    # else-branch, Ex. 10: after normalization the Seq2 constituent is moved
    # *before* the two iteration expressions
    els = cond.els
    assert len(els.prims) == 1  # Seq2(prev[1],next[#tl])
    assert els.prims[0].ptype == "seq"
    assert len(els.prods) == 2
    assert not els.conds


def test_mixed_order_reordered():
    src = """
D(t[];h[]) =
  prod (i:1..#t) Fifo1(t[i];h[i])
  mult Sync(a;b)
  mult if (#t == 1) { Sync(c;d) }
  mult Sync(e;f)
"""
    nf = normalize(flatten(parse(src), "D"))
    assert [p.ptype for p in nf.prims] == ["sync", "sync"]
    assert len(nf.prods) == 1
    assert len(nf.conds) == 1


def test_nested_normalization():
    src = """
D(t[];h[]) =
  prod (i:1..#t) {
    if (#t == 1) { Sync(t[i];h[i]) } mult Fifo1(t[i];x[i])
  }
"""
    nf = normalize(flatten(parse(src), "D"))
    inner = nf.prods[0].body
    assert len(inner.prims) == 1 and inner.prims[0].ptype == "fifo1"
    assert len(inner.conds) == 1


def test_empty_branches_allowed():
    src = "D(a;b) = Sync(a;b)"
    nf = normalize(flatten(parse(src), "D"))
    assert not nf.empty
    assert len(nf.prims) == 1


def test_str_rendering():
    src = "D(t[];h[]) = prod (i:1..#t) Fifo1(t[i];h[i]) mult Sync(a;b)"
    nf = normalize(flatten(parse(src), "D"))
    s = str(nf)
    assert "sync" in s and "prod" in s
    # constituents rendered before iterations
    assert s.index("sync") < s.index("prod")
