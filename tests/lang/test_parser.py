"""Parser: the paper's Figs. 8 and 9 plus grammar corner cases."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse
from repro.util.errors import ParseError

FIG8 = """
ConnectorEx11a(tl1,tl2;hd1,hd2) =
  Repl2(tl1;prev1,v1) mult Repl2(tl2;prev2,v2)
  mult Fifo1(v1;w1) mult Fifo1(v2;w2)
  mult Repl2(w1;next1,hd1) mult Repl2(w2;next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

ConnectorEx11b(tl1,tl2;hd1,hd2) =
  X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

main = ConnectorEx11a(aOut,bOut;cIn1,cIn2) among
  Tasks.a(aOut) and Tasks.b(bOut) and Tasks.c(cIn1,cIn2)
"""


def test_fig8_parses():
    prog = parse(FIG8)
    assert set(prog.defs) == {"ConnectorEx11a", "ConnectorEx11b", "X"}
    a = prog.defs["ConnectorEx11a"]
    assert [p.name for p in a.tails] == ["tl1", "tl2"]
    assert [p.name for p in a.heads] == ["hd1", "hd2"]
    assert isinstance(a.body, ast.Mult)
    assert len(a.body.items) == 8
    assert prog.main is not None
    assert prog.main.connector.name == "ConnectorEx11a"
    assert len(prog.main.tasks) == 3
    assert prog.main.tasks[0].name == "Tasks.a"


def test_fig9_parses(fig9_source):
    prog = parse(fig9_source)
    d = prog.defs["ConnectorEx11N"]
    assert d.tails[0].is_array and d.heads[0].is_array
    assert isinstance(d.body, ast.If)
    cond = d.body.cond
    assert isinstance(cond, ast.Cmp) and cond.op == "=="
    assert cond.left == ast.Len("tl")
    els = d.body.els
    assert isinstance(els, ast.Mult)
    prods = [x for x in els.items if isinstance(x, ast.Prod)]
    assert len(prods) == 2
    # main(N) with forall
    assert prog.main.params == ("N",)
    assert isinstance(prog.main.tasks[0], ast.Forall)
    assert isinstance(prog.main.connector.tails[0], ast.SliceRef)


def test_empty_arglists():
    prog = parse("D(a,b;) = Seq2(a,b;)")
    inst = prog.defs["D"].body
    assert inst.heads == ()


def test_cparams():
    prog = parse("F(a;b) = Filter<even>(a;b) mult FifoN<4>(b2;c)")
    items = prog.defs["F"].body.items
    assert items[0].cparams == ("even",)
    assert items[1].cparams == (4,)


def test_nested_if_else_chain():
    src = """
D(t[];h) =
  if (#t == 1) { Sync(t[1];h) }
  else { if (#t == 2) { Merg2(t[1],t[2];h) }
  else { Sync(t[1];h) } }
"""
    d = parse(src).defs["D"]
    assert isinstance(d.body, ast.If)
    assert isinstance(d.body.els, ast.If)


def test_else_if_without_braces():
    src = """
D(t[];h) =
  if (#t == 1) { Sync(t[1];h) }
  else if (#t == 2) { Merg2(t[1],t[2];h) }
"""
    d = parse(src).defs["D"]
    assert isinstance(d.body.els, ast.If)
    assert d.body.els.els is None


def test_arithmetic_precedence():
    src = "D(t[];h) = prod (i:1..#t*2+1) Sync(t[i];h)"
    d = parse(src).defs["D"]
    hi = d.body.hi
    # #t*2+1 parses as ((#t*2)+1)
    assert isinstance(hi, ast.BinOp) and hi.op == "+"
    assert isinstance(hi.left, ast.BinOp) and hi.left.op == "*"


def test_boolean_precedence():
    src = "D(t[];h) = if (#t == 1 || #t == 2 && #t != 3) { Sync(t[1];h) }"
    cond = parse(src).defs["D"].body.cond
    assert isinstance(cond, ast.BoolOp) and cond.op == "||"
    assert isinstance(cond.right, ast.BoolOp) and cond.right.op == "&&"


def test_parenthesized_boolean():
    src = "D(t[];h) = if ((#t == 1 || #t == 2) && !(#t == 3)) { Sync(t[1];h) }"
    cond = parse(src).defs["D"].body.cond
    assert isinstance(cond, ast.BoolOp) and cond.op == "&&"
    assert isinstance(cond.right, ast.NotOp)


def test_unary_minus():
    src = "D(t[];h) = prod (i:-1..1) Sync(t[i+2];h)"
    d = parse(src).defs["D"]
    assert isinstance(d.body.lo, ast.Neg)


def test_braced_prod_body():
    src = "D(t[];h[]) = prod (i:1..#t) { Sync(t[i];h[i]) }"
    d = parse(src).defs["D"]
    assert isinstance(d.body, ast.Prod)


def test_duplicate_definition_rejected():
    with pytest.raises(ParseError, match="duplicate"):
        parse("D(a;b) = Sync(a;b)\nD(a;b) = Sync(a;b)")


def test_duplicate_main_rejected():
    with pytest.raises(ParseError, match="duplicate main"):
        parse("main = X(a;b)\nmain = X(a;b)")


def test_missing_semicolon_in_signature():
    with pytest.raises(ParseError):
        parse("D(a,b) = Sync(a;b)")


def test_error_position_reported():
    try:
        parse("D(a;b) = Sync(a;b) mult")
    except ParseError as e:
        assert e.line >= 1
    else:
        pytest.fail("expected ParseError")


def test_ast_str_roundtrips_through_parser():
    """str(ast) must itself be parseable (pretty-printing sanity)."""
    prog = parse(FIG8)
    reparsed = parse(str(prog))
    assert set(reparsed.defs) == set(prog.defs)
    assert str(reparsed) == str(prog)
