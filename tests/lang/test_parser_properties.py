"""Property-based parser tests: generated programs pretty-print and reparse
to the same AST (print/parse is a retraction)."""

from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse

idents = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in ("mult", "prod", "if", "else", "main", "among", "and",
                        "forall")
)


@st.composite
def aexprs(draw, depth=2):
    if depth == 0:
        return draw(
            st.one_of(
                st.builds(ast.Num, st.integers(0, 99)),
                st.builds(ast.Var, st.just("i")),
                st.builds(ast.Len, st.just("t")),
            )
        )
    return draw(
        st.one_of(
            aexprs(depth=0),
            st.builds(
                ast.BinOp,
                st.sampled_from(["+", "-", "*", "/", "%"]),
                aexprs(depth=depth - 1),
                aexprs(depth=depth - 1),
            ),
            st.builds(ast.Neg, aexprs(depth=depth - 1)),
        )
    )


@st.composite
def bexprs(draw, depth=2):
    cmp = st.builds(
        ast.Cmp,
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        aexprs(1),
        aexprs(1),
    )
    if depth == 0:
        return draw(cmp)
    return draw(
        st.one_of(
            cmp,
            st.builds(
                ast.BoolOp,
                st.sampled_from(["&&", "||"]),
                bexprs(depth=depth - 1),
                bexprs(depth=depth - 1),
            ),
            st.builds(ast.NotOp, bexprs(depth=depth - 1)),
        )
    )


@st.composite
def exprs(draw, depth=2):
    inst = st.builds(
        lambda t, h: ast.Instance(
            "Sync", (ast.Ref(t, ast.Var("i")),), (ast.Ref(h),)
        ),
        st.just("t"),
        idents,
    )
    if depth == 0:
        return draw(inst)
    return draw(
        st.one_of(
            inst,
            st.builds(
                lambda c, th, el: ast.If(c, th, el),
                bexprs(1),
                exprs(depth=depth - 1),
                st.one_of(st.none(), exprs(depth=depth - 1)),
            ),
            st.builds(
                lambda lo, hi, b: ast.Prod("i", lo, hi, b),
                aexprs(1),
                aexprs(1),
                exprs(depth=depth - 1),
            ),
            st.builds(
                lambda items: ast.Mult(tuple(items)),
                st.lists(exprs(depth=depth - 1), min_size=2, max_size=3),
            ),
        )
    )


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_print_parse_retraction(body):
    d = ast.ConnectorDef("D", (ast.Param("t", True),), (ast.Param("h"),), body)
    src = str(d)
    prog = parse(src)
    # printing the reparsed program reproduces the same text (fixpoint)
    assert str(prog.defs["D"]) == src


@settings(max_examples=60, deadline=None)
@given(aexprs(depth=3))
def test_aexpr_print_parse_fixpoint(e):
    d = ast.ConnectorDef(
        "D",
        (ast.Param("t", True),),
        (ast.Param("h"),),
        ast.Prod("i", e, e, ast.Instance("Sync", (ast.Ref("t", ast.Var("i")),),
                                         (ast.Ref("h"),))),
    )
    src = str(d)
    assert str(parse(src).defs["D"]) == src
