"""Front-end robustness: malformed input fails with ParseError/ScopeError/
WellFormednessError — never with an internal exception.

The fuzz test feeds arbitrary token soup to the full front-end (parse +
flatten per definition); any non-`ReproError` escape is a bug.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.lang.flatten import flatten
from repro.lang.parser import parse
from repro.util.errors import ParseError, ReproError

TOKENS = [
    "mult", "prod", "if", "else", "main", "among", "and", "forall",
    "(", ")", "[", "]", "{", "}", ";", ",", "..", "#", "<", ">", "=",
    "==", "!=", "&&", "||", "!", "+", "-", "*", "/", "%", ":", ".",
    "Sync", "Fifo1", "Repl2", "Seq2", "X", "a", "b", "t", "i", "1", "2", "42",
]


@settings(max_examples=300, deadline=None)
@given(st.lists(st.sampled_from(TOKENS), max_size=25))
def test_parser_never_crashes(tokens):
    source = " ".join(tokens)
    try:
        program = parse(source)
        for name in program.defs:
            flatten(program, name)
    except ReproError:
        pass  # rejection is the expected outcome for garbage


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=60))
def test_lexer_never_crashes(text):
    try:
        parse(text)
    except ReproError:
        pass


# --- targeted diagnostics quality -----------------------------------------


@pytest.mark.parametrize(
    "source,needle",
    [
        ("D(a;b = Sync(a;b)", "expected"),
        ("D(a;b) = ", "constituent"),
        ("D(a;b) = Sync(a;b) mult", "constituent"),
        ("D(a;b) = prod (i:1..) Sync(a;b)", "arithmetic"),
        ("D(a;b) = if (1) { Sync(a;b) }", "comparison"),
        ("main = X(a;b)\nD(a;b) = Sync(a;b)\nmain = X(a;b)", "duplicate main"),
    ],
)
def test_error_messages_name_the_problem(source, needle):
    with pytest.raises(ParseError, match=needle):
        parse(source)


def test_errors_carry_positions():
    try:
        parse("D(a;b) =\n  Sync(a;b) mult @")
    except ParseError as e:
        assert e.line == 2
    else:
        pytest.fail("expected ParseError")
