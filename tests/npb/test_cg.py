"""NPB CG: matrix properties, oracle stability, variant equivalence."""

import numpy as np
import pytest

from repro.npb import cg


def test_matrix_spd_and_deterministic():
    a = cg.make_matrix("S")
    assert a.shape == (1400, 1400)
    # symmetric
    assert abs(a - a.T).max() < 1e-12
    # strictly diagonally dominant with positive diagonal -> SPD
    d = a.diagonal()
    off = np.asarray(abs(a).sum(axis=1)).ravel() - abs(d)
    assert (d > off).all()
    assert a is cg.make_matrix("S")  # cached


def test_serial_oracle_reproducible():
    z1 = cg.run_serial("S").value
    z2 = cg.run_serial("S").value
    assert z1 == z2
    # zeta = shift + 1/(x·z) stays in the shift's neighbourhood for this
    # strongly diagonally dominant matrix
    assert abs(z1 - cg.CLASSES["S"]["shift"]) < 5.0


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_original_matches_oracle(nprocs):
    r = cg.run_original("S", nprocs)
    assert r.verified, (r.value, cg.oracle("S"))


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_reo_matches_oracle(nprocs):
    r = cg.run_reo("S", nprocs)
    assert r.verified


def test_reo_aot_and_partitioned():
    assert cg.run_reo("S", 2, composition="aot").verified
    assert cg.run_reo("S", 3, use_partitioning=True).verified


def test_result_rows_render():
    r = cg.run_original("S", 2)
    row = r.row()
    assert "cg" in row and "original" in row and "OK" in row


def test_classes_ladder():
    nas = [cg.CLASSES[c]["na"] for c in ("S", "W", "A", "B", "C")]
    assert nas == sorted(nas)
    assert len(set(nas)) == 5
