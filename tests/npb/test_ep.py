"""NPB EP: gaussian-pair statistics and exact variant equality."""

import numpy as np
import pytest

from repro.npb import ep


def test_serial_statistics_sane():
    sx, sy, counts = ep.run_serial("S").value
    total_pairs = sum(counts)
    assert total_pairs > 0
    # acceptance rate of the polar method is pi/4 ~ 0.785
    assert abs(total_pairs / (1 << ep.CLASSES["S"]["m"]) - np.pi / 4) < 0.01
    # gaussian sums are near zero relative to the count
    assert abs(sx) < 5 * np.sqrt(total_pairs)
    assert abs(sy) < 5 * np.sqrt(total_pairs)
    # annulus counts strictly decreasing after the first few
    assert counts[0] > counts[3] > counts[6]


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5])
def test_original_bitwise_equal(nprocs):
    r = ep.run_original("S", nprocs)
    assert r.verified
    assert r.value == ep.oracle("S")  # exact, not just within tolerance


@pytest.mark.parametrize("nprocs", [2, 4])
def test_reo_bitwise_equal(nprocs):
    r = ep.run_reo("S", nprocs)
    assert r.verified


def test_batches_partition_evenly():
    for nprocs in (1, 2, 3, 7):
        batches = [ep._batches_for(r, nprocs) for r in range(nprocs)]
        flat = sorted(b for bs in batches for b in bs)
        assert flat == list(range(ep.N_BATCHES))
