"""NPB FT: spectral checksums and distributed-transpose correctness."""

import numpy as np
import pytest

from repro.npb import ft
from repro.npb.common import block_ranges


def test_field_and_factor_deterministic():
    assert np.array_equal(ft.make_field("S"), ft.make_field("S"))
    f = ft.evolve_factor("S")
    # unit modulus: the evolution is energy preserving
    assert np.allclose(np.abs(f), 1.0)


def test_iteration_unitary():
    """ortho-normalized FFTs keep the field's energy bounded."""
    u = ft.make_field("S")
    e0 = np.linalg.norm(u)
    for _ in range(4):
        u = ft._iteration(u, ft.evolve_factor("S"))
    assert abs(np.linalg.norm(u) - e0) < 1e-6 * e0


def test_serial_equals_fft2():
    """axis-1 FFTs around transposes == fft2 (the decomposition is exact)."""
    u = ft.make_field("S")
    via_transpose = np.fft.fft(
        np.fft.fft(u, axis=1, norm="ortho").T.copy(), axis=1, norm="ortho"
    ).T.copy()
    direct = np.fft.fft2(u, norm="ortho")
    assert np.allclose(via_transpose, direct, atol=1e-12)


def test_transpose_helper_is_a_transpose():
    """Drive _transpose directly for both ranks: messages exchanged through
    a dict stand-in for the pipes (all sends precede all receives in
    _transpose, so a single-threaded drive works)."""
    n = 8
    blocks = block_ranges(n, 2)
    full = np.arange(n * n, dtype=complex).reshape(n, n)
    sent: dict[tuple, np.ndarray] = {}
    out = {}
    # phase 1: capture both ranks' outgoing chunks
    for rank in range(2):
        lo, hi = blocks[rank]
        block = full[lo:hi]
        for j in range(2):
            if j != rank:
                jlo, jhi = blocks[j]
                sent[(rank, j)] = block[:, jlo:jhi].T.copy()
    # phase 2: run the real helper with pre-filled "pipes"
    for rank in range(2):
        lo, hi = blocks[rank]
        out[rank] = ft._transpose(
            full[lo:hi].copy(), rank, blocks,
            send_to=lambda j, m: None,  # already captured above
            recv_from=lambda j, rank=rank: sent[(j, rank)],
        )
    assembled = np.vstack([out[0], out[1]])
    assert np.array_equal(assembled, full.T)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_original_matches_serial(nprocs):
    r = ft.run_original("S", nprocs)
    assert r.verified, (r.value, ft.oracle("S"))


@pytest.mark.parametrize("nprocs", [2, 4])
def test_reo_matches_serial(nprocs):
    assert ft.run_reo("S", nprocs).verified


def test_reo_partitioned_and_aot():
    assert ft.run_reo("S", 3, use_partitioning=True).verified
    assert ft.run_reo("S", 2, composition="aot").verified
