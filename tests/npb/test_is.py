"""NPB IS: ranking correctness and parallel equality."""

import numpy as np
import pytest

from repro.npb import is_


def test_keys_deterministic_and_in_range():
    k = is_.make_keys("S")
    assert k.min() >= 0
    assert k.max() < is_.CLASSES["S"]["bmax"]
    assert np.array_equal(k, is_.make_keys("S"))


def test_rank_block_is_sorting_permutation():
    keys = is_.make_keys("S")
    hist = np.bincount(keys, minlength=is_.CLASSES["S"]["bmax"])
    offsets = np.concatenate(([0], np.cumsum(hist)[:-1]))
    ranks = is_._rank_block(keys, offsets)
    # ranks are a permutation of 0..n-1
    assert sorted(ranks) == list(range(len(keys)))
    # and placing keys at their ranks sorts them
    placed = np.empty_like(keys)
    placed[ranks] = keys
    assert np.array_equal(placed, np.sort(keys))


def test_rank_block_stable_for_equal_keys():
    keys = np.array([5, 3, 5, 3, 5], dtype=np.int64)
    # buckets: 3 -> offset 0 (count 2), 5 -> offset 2 (count 3)
    offs = np.zeros(8, dtype=np.int64)
    offs[3] = 0
    offs[5] = 2
    ranks = is_._rank_block(keys, offs)
    assert list(ranks) == [2, 0, 3, 1, 4]


def test_block_checksums_sum_to_global():
    keys = is_.make_keys("S")
    hist = np.bincount(keys, minlength=is_.CLASSES["S"]["bmax"])
    offsets = np.concatenate(([0], np.cumsum(hist)[:-1]))
    whole = is_._checksum(is_._rank_block(keys, offsets), 0)
    # split in two blocks, with block-adjusted offsets
    mid = len(keys) // 2
    h1 = np.bincount(keys[:mid], minlength=is_.CLASSES["S"]["bmax"])
    r1 = is_._rank_block(keys[:mid], offsets.copy())
    r2 = is_._rank_block(keys[mid:], offsets + h1)
    assert is_._checksum(r1, 0) + is_._checksum(r2, mid) == whole


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_original_equals_serial(nprocs):
    assert is_.run_original("S", nprocs).verified


@pytest.mark.parametrize("nprocs", [2, 4])
def test_reo_equals_serial(nprocs):
    assert is_.run_reo("S", nprocs).verified


def test_inbox_reorders_kinds():
    msgs = [(0, "hist", 1), (1, "checksum", 2), (1, "hist", 3)]
    it = iter(msgs)
    inbox = is_._Inbox(lambda: next(it))
    assert inbox.expect("hist") == (0, "hist", 1)
    assert inbox.expect("hist") == (1, "hist", 3)  # skipped the checksum
    assert inbox.expect("checksum") == (1, "checksum", 2)  # from pending
