"""NPB LU: SSOR convergence, wavefront-pipeline equivalence."""

import numpy as np
import pytest

from repro.npb import lu


def test_serial_converges():
    r = lu.run_serial("S")
    checksum, last_delta = r.value
    assert np.isfinite(checksum)
    # SOR on a Laplace-like system: update norms shrink over sweeps
    assert last_delta < 100.0


def test_rhs_deterministic():
    assert np.array_equal(lu.make_rhs("S"), lu.make_rhs("S"))


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_original_bitwise_matches_serial(nprocs):
    r = lu.run_original("S", nprocs)
    assert r.verified, (r.value, lu.oracle("S"))


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_reo_matches_serial(nprocs):
    r = lu.run_reo("S", nprocs)
    assert r.verified


def test_reo_partitioned_and_aot():
    assert lu.run_reo("S", 3, use_partitioning=True).verified
    assert lu.run_reo("S", 2, composition="aot").verified


def test_more_procs_than_chunks_still_correct():
    # ny=32, 8 slaves of 4 rows each; nchunks=4
    r = lu.run_original("S", 8)
    assert r.verified


def test_sweep_is_gauss_seidel_vertically():
    """Row j+1's update must see row j's *new* values (the wavefront)."""
    rhs = np.zeros((3, 4))
    u = np.ones((3, 4))
    cols = slice(0, 4)
    bottom, _ = lu._sweep_rows(u, rhs, np.zeros(4), None, cols)
    # with omega=1.2 and zero rhs/boundaries the rows decay in a cascade:
    # each row's new value depends on the (already updated) row above.
    assert not np.allclose(u[0], u[1])
    assert np.array_equal(bottom, u[2])
