"""NPB MG: V-cycle convergence and distributed-variant equality."""

import numpy as np
import pytest

from repro.npb import mg


def test_vcycle_reduces_residual():
    rhs = mg.make_rhs("S")
    u = np.zeros_like(rhs)
    initial = float(np.linalg.norm(rhs))
    norms = []
    for _ in range(mg.N_CYCLES):
        u = mg._vcycle(u, rhs)
        norms.append(float(np.linalg.norm(rhs - mg._laplacian(u))))
    # converges against the initial residual and keeps improving per cycle
    assert norms[-1] < initial * 0.1
    assert norms == sorted(norms, reverse=True)


def test_restrict_prolong_shapes():
    r = np.arange(36.0).reshape(6, 6)
    c = mg._restrict(r)
    assert c.shape == (3, 3)
    p = mg._prolong(c, (6, 6))
    assert p.shape == (6, 6)
    # piecewise-constant: each coarse cell covers a 2x2 fine patch
    assert (p[0:2, 0:2] == c[0, 0]).all()


def test_block_smoothing_matches_whole_grid():
    rhs = mg.make_rhs("S")
    u = np.zeros_like(rhs)
    whole = mg._smooth(u.copy(), rhs, 1)
    mid = 20
    top_halo = np.zeros(rhs.shape[1])
    upper = mg._block_smooth_step(u[:mid], rhs[:mid], top_halo, u[mid])
    lower = mg._block_smooth_step(u[mid:], rhs[mid:], u[mid - 1],
                                  np.zeros(rhs.shape[1]))
    assert np.array_equal(np.vstack([upper, lower]), whole)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_original_bitwise_matches_serial(nprocs):
    r = mg.run_original("S", nprocs)
    assert r.verified, (r.value, mg.oracle("S"))


@pytest.mark.parametrize("nprocs", [2, 4])
def test_reo_matches_serial(nprocs):
    assert mg.run_reo("S", nprocs).verified


def test_reo_partitioned():
    assert mg.run_reo("S", 3, use_partitioning=True).verified
