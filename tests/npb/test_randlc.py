"""The NPB generator: exact LCG semantics, vectorization, substreams."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.npb.randlc import (
    A_DEFAULT,
    MOD,
    Randlc,
    SEED_DEFAULT,
    lcg_advance,
    randlc_stream,
)


def reference_sequence(n, seed=SEED_DEFAULT, a=A_DEFAULT):
    """Exact big-int reference."""
    out = []
    x = seed
    for _ in range(n):
        x = (a * x) % MOD
        out.append(x / MOD)
    return out


def test_scalar_matches_reference():
    r = Randlc()
    assert [r.next() for _ in range(50)] == reference_sequence(50)


def test_vectorized_matches_scalar():
    n = 10_000  # spans multiple internal blocks
    stream = randlc_stream(n)
    ref = reference_sequence(n)
    assert np.allclose(stream, ref, rtol=0, atol=0)


def test_stream_deterministic():
    assert np.array_equal(randlc_stream(1000), randlc_stream(1000))


def test_values_in_unit_interval():
    s = randlc_stream(100_000)
    assert (s > 0).all() and (s < 1).all()


def test_lcg_advance_matches_iteration():
    x = SEED_DEFAULT
    for _ in range(137):
        x = (A_DEFAULT * x) % MOD
    assert lcg_advance(SEED_DEFAULT, 137) == x


def test_skip():
    r1 = Randlc()
    for _ in range(100):
        r1.next()
    r2 = Randlc().skip(100)
    assert r1.next() == r2.next()


def test_substreams_tile_the_stream():
    """Advancing the seed by k must equal skipping k values — the property
    NPB task decomposition relies on."""
    whole = randlc_stream(300)
    part = randlc_stream(100, seed=lcg_advance(SEED_DEFAULT, 200))
    assert np.array_equal(whole[200:], part)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 500), st.integers(1, 200))
def test_stream_suffix_property(offset, n):
    whole = randlc_stream(offset + n)
    sub = randlc_stream(n, seed=lcg_advance(SEED_DEFAULT, offset))
    assert np.array_equal(whole[offset:], sub)


def test_empty_stream():
    assert randlc_stream(0).shape == (0,)


def test_mean_approximately_half():
    s = randlc_stream(200_000)
    assert abs(s.mean() - 0.5) < 0.01
