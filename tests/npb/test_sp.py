"""NPB SP: tridiagonal line solves, ADI steps, variant equality."""

import numpy as np
import pytest

from repro.npb import sp


def test_tridiag_solver_against_dense():
    """Thomas algorithm vs a dense solve of the same system."""
    n = 16
    rng_rhs = sp.randlc_stream(3 * n).reshape(3, n)
    a = np.zeros((n, n))
    np.fill_diagonal(a, 1.0 + 2.0 * sp.SIGMA)
    for i in range(n - 1):
        a[i, i + 1] = -sp.SIGMA
        a[i + 1, i] = -sp.SIGMA
    x = sp.tridiag_solve_lines(rng_rhs)
    for row in range(3):
        ref = np.linalg.solve(a, rng_rhs[row])
        assert np.allclose(x[row], ref, atol=1e-12)


def test_step_is_stable():
    """Implicit diffusion: the field stays bounded over many steps."""
    u, f = sp.make_init("S")
    zero_f = np.zeros_like(f)
    n0 = np.linalg.norm(u)
    for _ in range(20):
        u = sp._step_rows(u, zero_f)
        u = sp._step_rows(u.T.copy(), zero_f).T.copy()
    assert np.linalg.norm(u) < n0  # pure diffusion contracts


def test_serial_deterministic():
    assert sp.run_serial("S").value == sp.run_serial("S").value


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_original_bitwise_matches_serial(nprocs):
    r = sp.run_original("S", nprocs)
    assert r.verified, (r.value, sp.oracle("S"))


@pytest.mark.parametrize("nprocs", [2, 4])
def test_reo_matches_serial(nprocs):
    assert sp.run_reo("S", nprocs).verified


def test_reo_partitioned_and_aot():
    assert sp.run_reo("S", 3, use_partitioning=True).verified
    assert sp.run_reo("S", 2, composition="aot").verified
