"""Regenerate the exporter golden files from the hand-built fixtures.

Run after an *intended* exporter format change::

    PYTHONPATH=src python tests/runtime/golden/regen.py

then eyeball ``git diff tests/runtime/golden`` before committing — these
files are the format contract that ``test_observe.py`` pins.
"""

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
sys.path.insert(0, str(HERE.parent))

from test_observe import golden_events, golden_registry  # noqa: E402

from repro.runtime.observe import (  # noqa: E402
    render_chrome_trace,
    render_json,
    render_prometheus,
)


def main() -> None:
    (HERE / "metrics.prom").write_text(render_prometheus(golden_registry()))
    (HERE / "metrics.json").write_text(render_json(golden_registry()) + "\n")
    trace = render_chrome_trace(
        golden_events(), t0=10.0, vertex_parties={"x0": "producer"}
    )
    (HERE / "trace.json").write_text(
        json.dumps(json.loads(trace), indent=2) + "\n"
    )
    for name in ("metrics.prom", "metrics.json", "trace.json"):
        print(f"wrote {HERE / name}")


if __name__ == "__main__":
    main()
