"""Checkpoint/restore vs leave/drain: serialization and typed-error
contracts.

The connector's admin lock serializes :meth:`checkpoint`, :meth:`restore`
and :meth:`leave`; a checkpoint observes either the pre-departure or the
post-departure protocol, never the re-parametrization window in between,
and a stale checkpoint restored after a departure fails with a *typed*
:class:`~repro.util.errors.CheckpointError` (boundary-signature mismatch)
rather than silently resurrecting the departed party's state.

Drain is the other racing admin flow: a drain ends in close, so a
checkpoint that loses the race must fail with :class:`CheckpointError`
("connector is draining" / "engine closed") — never hang, never raise an
untyped error, and never hand back a snapshot of a half-drained protocol.
"""

import random
import threading

import pytest

from repro.connectors import library
from repro.runtime.ports import mkports
from repro.util.errors import CheckpointError

OP_TIMEOUT = 5.0


def test_restore_after_leave_raises_typed_error():
    """A checkpoint taken before a departure is stale afterwards."""
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    try:
        cp = conn.checkpoint("pre-leave")
        report = conn.leave(outs[0], task="A")
        assert report.task == "A" and report.removed_vertices
        with pytest.raises(CheckpointError, match="boundary signature"):
            conn.restore(cp)
    finally:
        conn.close()


def test_cross_arity_restore_raises_typed_error():
    """Restoring into a structurally different connector is refused."""
    big = library.connector("Merger", 3, default_timeout=OP_TIMEOUT)
    outs3, ins3 = mkports(3, 1)
    big.connect(outs3, ins3)
    small = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs2, ins2 = mkports(2, 1)
    small.connect(outs2, ins2)
    try:
        cp = big.checkpoint()
        with pytest.raises(CheckpointError):
            small.restore(cp)
    finally:
        big.close()
        small.close()


def test_post_departure_checkpoint_restores_cleanly():
    """The non-racy half of the contract: a checkpoint taken *after* the
    departure restores into the re-parametrized connector."""
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    try:
        conn.leave(outs[0], task="A")
        cp = conn.checkpoint("post-leave")
        conn.restore(cp)  # must not raise
    finally:
        conn.close()


def test_checkpoint_during_drain_raises_typed_error():
    """The non-racy half of the drain contract: once a drain has begun,
    checkpoint is refused with the typed draining message."""
    conn = library.connector("FifoChain", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    try:
        conn.engine.begin_drain()
        with pytest.raises(CheckpointError, match="draining"):
            conn.checkpoint()
    finally:
        conn.close()


@pytest.mark.fault_stress
@pytest.mark.parametrize("seed", [3, 11, 29])
def test_checkpoint_hammer_vs_drain_serializes_or_raises_typed(seed):
    """Seeded hammer: checkpoint() racing a full drain-to-close must
    either win cleanly (a resumable pre-drain snapshot) or lose with a
    typed :class:`CheckpointError` — no hangs, no other exception types.

    Traffic keeps values buffered so the drain has real flushing to do,
    and the consumer keeps receiving through it (drain semantics: receives
    flush, sends are refused)."""
    rng = random.Random(f"drain-hammer:{seed}")
    for round_ in range(4):
        conn = library.connector("FifoChain", 3, default_timeout=OP_TIMEOUT)
        (out,), (inp,) = mkports(1, 1)
        conn.connect([out], [inp])
        # preload buffered values so the drain is not a trivial no-op
        preloaded = rng.randint(1, 3)
        for j in range(preloaded):
            out.send(f"pre{j}", timeout=OP_TIMEOUT)

        got: list = []
        wins: list = []
        errors: list = []
        start = threading.Barrier(3)

        def consumer():
            start.wait()
            for _ in range(preloaded):
                got.append(inp.recv(timeout=OP_TIMEOUT))

        def hammer():
            start.wait()
            for _ in range(40):
                try:
                    wins.append(conn.checkpoint())
                except CheckpointError:
                    pass  # lost the race to the drain (or mid-firing): typed
                except Exception as exc:  # noqa: BLE001 - the contract
                    errors.append(exc)

        threads = [threading.Thread(target=consumer),
                   threading.Thread(target=hammer)]
        for t in threads:
            t.start()
        start.wait()
        conn.drain(timeout=OP_TIMEOUT)
        for t in threads:
            t.join(OP_TIMEOUT + 5)
            assert not t.is_alive(), f"seed {seed} round {round_}: hang"
        assert not errors, (
            f"seed {seed} round {round_}: untyped errors {errors!r}"
        )
        assert got == [f"pre{j}" for j in range(preloaded)]
        # every winning snapshot is a genuine pre-drain protocol state:
        # resumable into a fresh identical build
        for cp in wins[-1:]:
            fresh = library.connector("FifoChain", 3,
                                      default_timeout=OP_TIMEOUT)
            fouts, fins = mkports(1, 1)
            fresh.connect(fouts, fins)
            fresh.restore(cp)  # must not raise
            fresh.close()


@pytest.mark.fault_stress
def test_checkpoint_hammer_never_observes_reparametrization_window():
    """Hammer checkpoint() from a thread while leave() re-parametrizes:
    every snapshot's boundary signature must be exactly the pre- or the
    post-departure one — the admin lock admits no intermediate state."""
    for round_ in range(5):
        conn = library.connector("Barrier", 3, default_timeout=OP_TIMEOUT)
        outs, ins = mkports(3, 3)
        conn.connect(outs, ins)
        pre = conn.checkpoint().boundary
        snapshots: list = []
        errors: list = []
        start = threading.Barrier(2)

        def hammer():
            start.wait()
            for _ in range(50):
                try:
                    snapshots.append(conn.checkpoint().boundary)
                except Exception as exc:  # typed errors only, and none here
                    errors.append(exc)

        t = threading.Thread(target=hammer)
        t.start()
        start.wait()
        conn.leave(outs[round_ % 3], task=f"p{round_ % 3}")
        t.join(OP_TIMEOUT + 5)
        assert not t.is_alive()
        post = conn.checkpoint().boundary
        conn.close()
        assert not errors, errors
        assert pre != post
        for b in snapshots:
            assert b in (pre, post), (
                f"round {round_}: checkpoint saw intermediate boundary {b!r}"
            )
