"""Buffer store: capacities, FIFO order, redeclaration rules."""

import pytest

from repro.automata.automaton import BufferSpec
from repro.runtime.buffers import BufferStore
from repro.util.errors import RuntimeProtocolError


def test_fifo_order():
    s = BufferStore([BufferSpec("q", capacity=3)])
    for v in "abc":
        s.push("q", v)
    assert [s.pop("q") for _ in range(3)] == ["a", "b", "c"]


def test_bounded_capacity():
    s = BufferStore([BufferSpec("q", capacity=2)])
    s.push("q", 1)
    assert not s.full("q")
    s.push("q", 2)
    assert s.full("q")


def test_unbounded():
    s = BufferStore([BufferSpec("q", capacity=None)])
    for i in range(1000):
        s.push("q", i)
    assert not s.full("q")
    assert s.occupancy("q") == 1000


def test_initial_contents():
    s = BufferStore([BufferSpec("q", capacity=1, initial=("tok",))])
    assert s.full("q")
    assert s.peek("q") == "tok"


def test_initial_exceeds_capacity():
    with pytest.raises(RuntimeProtocolError):
        BufferStore([BufferSpec("q", capacity=1, initial=(1, 2))])


def test_redeclare_same_capacity_ok():
    s = BufferStore()
    s.declare(BufferSpec("q", capacity=2))
    s.declare(BufferSpec("q", capacity=2))
    assert s.names() == ("q",)


def test_redeclare_conflicting_capacity():
    s = BufferStore([BufferSpec("q", capacity=2)])
    with pytest.raises(RuntimeProtocolError):
        s.declare(BufferSpec("q", capacity=3))


def test_snapshot_immutable_view():
    s = BufferStore([BufferSpec("q", capacity=2)])
    s.push("q", 1)
    snap = s.snapshot()
    assert snap == {"q": (1,)}
    s.push("q", 2)
    assert snap == {"q": (1,)}


def test_empty_predicate():
    s = BufferStore([BufferSpec("q")])
    assert s.empty("q")
    s.push("q", 0)
    assert not s.empty("q")
