"""The basic Foster–Chandy model (paper §II, Figs. 1–2)."""

import pytest

from repro.runtime.channels import Channel, ChannelInport, ChannelOutport, channel
from repro.runtime.tasks import TaskGroup, spawn
from repro.util.errors import PortClosedError


def test_nonblocking_send_blocking_recv():
    out, inp = channel()
    # sends never block (unbounded buffer, §II)
    for i in range(1000):
        out.send(i)
    assert [inp.recv() for _ in range(1000)] == list(range(1000))


def test_fig2_example1_with_auxiliary_communication():
    """The paper's Fig. 2: Ex. 1 in the basic model needs an auxiliary
    channel from C back to B to enforce the A-before-B ordering."""
    ao, ci1 = channel()
    bo, ci2 = channel()
    x, y = channel()  # auxiliary

    events = []

    def a(out):
        out.send("msg-a")

    def b(y_in, out):
        o = "msg-b"
        y_in.recv()  # auxiliary: wait until C has A's message
        out.send(o)

    def c(in1, in2, x_out):
        o1 = in1.recv()
        events.append(o1)
        x_out.send(0)  # auxiliary
        o2 = in2.recv()
        events.append(o2)

    with TaskGroup() as g:
        g.spawn(a, ao)
        g.spawn(b, y, bo)
        g.spawn(c, ci1, ci2, x)
    assert events == ["msg-a", "msg-b"]


def test_unconnected_ports_rejected():
    with pytest.raises(PortClosedError):
        ChannelOutport("o").send(1)
    with pytest.raises(PortClosedError):
        ChannelInport("i").recv()


def test_double_connect_rejected():
    out, inp = ChannelOutport(), ChannelInport()
    Channel().connect(out, inp)
    with pytest.raises(PortClosedError):
        Channel().connect(out, ChannelInport())


def test_close_unblocks_receiver():
    out, inp = channel()

    def blocked():
        with pytest.raises(PortClosedError):
            inp.recv()
        return True

    h = spawn(blocked)
    import time

    time.sleep(0.02)
    out.close()
    assert h.join(5)


def test_send_after_close():
    out, _ = channel()
    out.close()
    with pytest.raises(PortClosedError):
        out.send(1)
