"""Checkpoint/restore round-trips for every library connector.

For each of the 18 connectors at arities 2, 3 and 8: drive a phase-A
workload, snapshot at a quiescent point, then (1) continue with a phase-B
workload on the original connector and (2) restore the snapshot into a
fresh instance and run the *same* phase B there.  The two phase-B runs must
be trace-equivalent (same fired labels and deliveries, via
:mod:`repro.runtime.trace`), observe the same values at the boundary, and
end in identical protocol states.

The snapshot additionally takes a trip through the durable on-disk format
(:mod:`repro.runtime.durable`) before the restore, so every connector state
in the matrix doubles as a golden test of the v1 snapshot encoding.

Phase B workloads are designed to be deterministic: operations are either
sequenced (one at a time) or forced (only one transition enabled), and the
engines' captured round-robin cursors make the remaining choices identical
across the two runs.  Phase A has no such obligation — it runs once.
"""

import time

import pytest

from repro.connectors import library
from repro.runtime.durable import SessionStore, checkpoint_to_data
from repro.runtime.errors import SchemaVersionError
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup
from repro.runtime.trace import TraceRecorder

OP_TIMEOUT = 15.0
pytestmark = pytest.mark.fault_stress

JOIN_TIMEOUT = 60.0
ARITIES = (2, 3, 8)


# -- workload interpreter ---------------------------------------------------
#
# A phase is a list of steps:
#   ("pump", {out_idx: [values]}, {in_idx: count})  concurrent send/recv
#   ("poll", count)           cycle try_recv over all inports, collect count
#   ("cycle", count)          cycle try_send over all outports (sequencers)
#   ("ops", [(out_idx, val)]) sequential try_sends that must each succeed


def run_phase(conn, outs, ins, steps):
    collected = []
    for step in steps:
        if step[0] == "pump":
            _, sends, recvs = step
            results = {}

            def sender(port, values):
                for v in values:
                    port.send(v)

            def receiver(idx, port, count):
                results[idx] = [port.recv() for _ in range(count)]

            with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
                for idx, values in sends.items():
                    g.spawn(sender, outs[idx], values, name=f"send{idx}")
                for idx, count in recvs.items():
                    g.spawn(receiver, idx, ins[idx], count, name=f"recv{idx}")
            for idx in sorted(recvs):
                collected.extend((idx, v) for v in results[idx])
        elif step[0] == "poll":
            want = step[1]
            got = []
            deadline = time.monotonic() + OP_TIMEOUT
            while len(got) < want:
                assert time.monotonic() < deadline, "poll starved"
                for i, p in enumerate(ins):
                    ok, v = p.try_recv()
                    if ok:
                        got.append((i, v))
            collected.extend(got)
        elif step[0] == "cycle":
            want = step[1]
            grants = []
            deadline = time.monotonic() + OP_TIMEOUT
            while len(grants) < want:
                assert time.monotonic() < deadline, "cycle starved"
                for i, o in enumerate(outs):
                    if o.try_send(f"s{len(grants)}"):
                        grants.append(i)
                        break
            collected.extend(grants)
        else:  # "ops"
            for idx, val in step[1]:
                assert outs[idx].try_send(val), (idx, val)
                collected.append(idx)
    deadline = time.monotonic() + OP_TIMEOUT
    while not conn.engine.quiescent:
        assert time.monotonic() < deadline, "no quiescence after phase"
        time.sleep(0.002)
    return collected


def workload(name, n):
    """(phase_a, phase_b) per connector family; phase B is deterministic."""
    all_send_a = {i: [f"a{i}"] for i in range(n)}
    all_send_b = {i: [f"b{i}"] for i in range(n)}
    each_recv_1 = {i: 1 for i in range(n)}
    if name == "Merger":
        return (
            [("pump", all_send_a, {0: n})],
            [("pump", {i: [f"b{i}"]}, {0: 1}) for i in range(n)],
        )
    if name == "Replicator":
        return (
            [("pump", {0: ["a"]}, each_recv_1)],
            [("pump", {0: ["b"]}, each_recv_1)],
        )
    if name == "Router":
        return (
            [("pump", {0: ["a"]}, {0: 1})],
            [("pump", {0: ["b"]}, {n - 1: 1})],
        )
    if name == "EarlyAsyncMerger":
        return (
            [("pump", all_send_a, {})],  # n full fifos at the checkpoint
            [("pump", {}, {0: n})],  # drain order fixed by the rr cursors
        )
    if name == "LateAsyncMerger":
        return (
            [("pump", {0: ["a0"]}, {})],  # value parked in the tail fifo
            [("pump", {}, {0: 1}), ("pump", {1 % n: ["b"]}, {0: 1})],
        )
    if name == "EarlyAsyncReplicator":
        return ([("pump", {0: ["a"]}, {})], [("pump", {}, each_recv_1)])
    if name == "LateAsyncReplicator":
        return ([("pump", {0: ["a"]}, {})], [("pump", {}, each_recv_1)])
    if name == "EarlyAsyncRouter":
        return ([("pump", {0: ["a"]}, {})], [("pump", {}, {0: 1})])
    if name == "LateAsyncRouter":
        # The router already chose a fifo (rr-determined); phase B finds it.
        return ([("pump", {0: ["a"]}, {})], [("poll", 1)])
    if name == "Sequencer":
        return ([("cycle", max(1, n // 2))], [("cycle", n)])
    if name == "OutSequencer":
        return (
            [("pump", {0: ["a0"]}, {0: 1})],  # mid-cycle: token at slot 2
            [("pump", {0: [f"a{j}"]}, {j: 1}) for j in range(1, n)]
            + [("pump", {0: ["w"]}, {0: 1})],
        )
    if name == "EarlyAsyncOutSequencer":
        return (
            [("pump", {0: ["a"]}, {})],
            [("pump", {}, {0: 1}), ("pump", {0: ["b"]}, {1 % n: 1})],
        )
    if name == "Alternator":
        return (
            [("pump", all_send_a, {0: 1})],  # one round sent, 1 of n drained
            [("pump", {}, {0: n - 1})],  # drain the rest in index order
        )
    if name == "Barrier":
        return (
            [("pump", all_send_a, each_recv_1)],
            [("pump", all_send_b, each_recv_1)],
        )
    if name == "EarlyAsyncBarrierMerger":
        return ([("pump", all_send_a, {})], [("pump", {}, {0: n})])
    if name == "Lock":
        # outport i acquires for client i, outport n+i releases.
        return (
            [("ops", [(0, "acq"), (n, "rel"), (1, "acq")])],  # client 1 holds
            [("ops", [(n + 1, "rel")] + [(i, "acq") for i in (0,)] + [(n, "rel")])],
        )
    if name == "FifoChain":
        return ([("pump", {0: [1, 2]}, {})], [("pump", {}, {0: 2})])
    if name == "SequencedMerger":
        return (
            [("pump", {0: ["a0"]}, {0: 1})],
            [("pump", {j: [f"a{j}"]}, {j: 1}) for j in range(1, n)],
        )
    raise AssertionError(f"no workload for {name}")


def make(name, n, tracer, compiled="auto", **backend):
    conn = library.connector(name, n, default_timeout=OP_TIMEOUT,
                             tracer=tracer, compiled=compiled, **backend)
    outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
    conn.connect(outs, ins)
    return conn, outs, ins


def durable_hop(cp, tmp_path, tag):
    """Round-trip a checkpoint through the on-disk v1 snapshot format.

    The recovered checkpoint must be *identical* — same dataclass content,
    tuples still tuples — so the matrix's restore below exercises the
    decoded copy, not the in-memory original.
    """
    store = SessionStore(tmp_path, f"golden-{tag}")
    try:
        store.save_snapshot(cp, seq=0)
        rec = store.recover()
    finally:
        store.close()
    assert rec.outcome == "restored", tag
    got = rec.checkpoint
    assert checkpoint_to_data(got) == checkpoint_to_data(cp), tag
    assert got.buffers == cp.buffers and got.steps == cp.steps, tag
    assert got.regions == cp.regions and got.parties == cp.parties, tag
    return got


@pytest.mark.parametrize(
    "tiers", [("auto", "off"), ("off", "auto")],
    ids=["compiled-to-interp", "interp-to-compiled"],
)
@pytest.mark.parametrize("n", ARITIES)
@pytest.mark.parametrize("name", library.names())
def test_checkpoint_roundtrip(name, n, tiers, tmp_path):
    """Cross-tier round-trip: the checkpoint is taken under one step tier
    and restored under the other, in both directions.  Checkpoints carry
    per-state rr cursors as indexes into the candidate list, so this pins
    the tiers' shared dense candidate enumeration — a compiled table whose
    order diverged from the interpreter's scan would replay phase B with a
    different arbitration and fail trace equivalence here."""
    tier1, tier2 = tiers
    phase_a, phase_b = workload(name, n)

    tracer1 = TraceRecorder()
    c1, outs1, ins1 = make(name, n, tracer1, compiled=tier1)
    run_phase(c1, outs1, ins1, phase_a)
    cp = durable_hop(c1.checkpoint(), tmp_path, f"{name}-{n}")
    mark = len(tracer1.events)
    obs1 = run_phase(c1, outs1, ins1, phase_b)
    events1 = tracer1.events[mark:]
    end1 = c1.checkpoint()
    c1.close()

    tracer2 = TraceRecorder()
    c2, outs2, ins2 = make(name, n, tracer2, compiled=tier2)
    c2.restore(cp)  # also clears tracer2
    obs2 = run_phase(c2, outs2, ins2, phase_b)
    events2 = tracer2.events
    end2 = c2.checkpoint()
    c2.close()

    # Boundary observations and fired steps must agree exactly: restoring
    # the snapshot into a fresh instance is indistinguishable from having
    # continued the original run.
    assert obs1 == obs2, (name, n)
    assert [e.label for e in events1] == [e.label for e in events2], (name, n)
    assert [e.deliveries for e in events1] == [e.deliveries for e in events2]
    assert end1.buffers == end2.buffers, (name, n)
    assert end1.steps == end2.steps, (name, n)
    assert end1.regions == end2.regions, (name, n)


# All three backends get the same partitioned region structure — a
# checkpoint's region tuple is indexed by global region position, so the
# source and target must agree on the decomposition (they do in practice:
# partitioning is a property of the compiled protocol, not the backend).
BACKENDS = {
    "regions": dict(concurrency="regions", use_partitioning=True),
    "global": dict(concurrency="global", use_partitioning=True),
    "workers": dict(concurrency="workers", workers=2, use_partitioning=True),
}

# Representative slice of the connector families: synchronous fan-in,
# synchronous fan-out, buffered cross-region flow, and a pure control
# token loop.  The full 18×3 sweep above already covers state encoding;
# this matrix pins the *backend-portability* of the format.
CROSS_NAMES = ("Merger", "Replicator", "EarlyAsyncRouter", "Sequencer")
CROSS_PAIRS = [
    ("workers", "regions"),
    ("regions", "workers"),
    ("workers", "global"),
    ("global", "workers"),
]


@pytest.mark.parametrize("src,dst", CROSS_PAIRS, ids=lambda b: b)
@pytest.mark.parametrize("name", CROSS_NAMES)
def test_cross_backend_migration(name, src, dst, tmp_path):
    """A checkpoint taken under one engine backend restores under another.

    The workers backend merges per-process region states by global region
    index into the same :class:`Checkpoint` dataclass the thread engines
    produce, so snapshots must migrate workers ↔ regions ↔ global without
    translation — including a trip through the durable on-disk format.
    Boundary observations and the final protocol state must match a run
    that continued on the source backend."""
    n = 3
    phase_a, phase_b = workload(name, n)

    tracer1 = TraceRecorder()
    c1, outs1, ins1 = make(name, n, tracer1, **BACKENDS[src])
    run_phase(c1, outs1, ins1, phase_a)
    cp = durable_hop(c1.checkpoint(), tmp_path, f"{src}-{dst}-{name}")
    obs1 = run_phase(c1, outs1, ins1, phase_b)
    end1 = c1.checkpoint()
    c1.close()

    tracer2 = TraceRecorder()
    c2, outs2, ins2 = make(name, n, tracer2, **BACKENDS[dst])
    c2.restore(cp)
    obs2 = run_phase(c2, outs2, ins2, phase_b)
    end2 = c2.checkpoint()
    c2.close()

    assert obs1 == obs2, (name, src, dst)
    assert end1.buffers == end2.buffers, (name, src, dst)
    assert end1.steps == end2.steps, (name, src, dst)
    assert end1.regions == end2.regions, (name, src, dst)


def test_snapshot_forward_compat(tmp_path):
    """A snapshot written by a *newer* schema raises the typed error and is
    left in place — an old binary must refuse, not quarantine, state it
    merely does not understand yet."""
    from repro.runtime.durable import SCHEMA_VERSION, _frame, _unframe

    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(len(conn.tail_vertices), len(conn.head_vertices))
    conn.connect(outs, ins)
    cp = conn.checkpoint()
    conn.close()

    store = SessionStore(tmp_path, "future")
    try:
        gen, _ = store.save_snapshot(cp, seq=0)
        path = store.dir / f"snapshot-{gen:08d}.ckpt"
        lines = path.read_bytes().splitlines(keepends=True)
        header = _unframe(lines[0])
        header["version"] = SCHEMA_VERSION + 1
        path.write_bytes(_frame(header) + b"".join(lines[1:]))

        with pytest.raises(SchemaVersionError) as exc:
            store.recover()
        assert exc.value.version == SCHEMA_VERSION + 1
        assert exc.value.supported == SCHEMA_VERSION
        # refused, not quarantined: the file survives for a newer binary
        assert path.exists()
        assert not list(store.dir.glob("*.corrupt"))
    finally:
        store.close()
