"""Close/crash races: closing mid-drain, closing under blocked peers,
double-close, and send-after-close on every port type."""

import threading
import time

import pytest

from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.channels import channel
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup, spawn
from repro.util.errors import PortClosedError, ProtocolTimeoutError, ReproError


def pipe(**options):
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P", **options)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    return conn, outs[0], ins[0]


def test_connector_close_during_active_drain():
    """Closing while traffic is flowing: both sides stop with PortClosedError
    (or finish), nothing hangs, nothing crashes untyped."""
    conn, out, inp = pipe()
    errors = []

    def producer():
        try:
            for i in range(100_000):
                out.send(i)
        except PortClosedError as exc:
            errors.append(exc)

    def consumer():
        try:
            while True:
                inp.recv()
        except PortClosedError as exc:
            errors.append(exc)

    with TaskGroup(join_timeout=30) as g:
        g.spawn(producer)
        g.spawn(consumer)
        time.sleep(0.05)  # let traffic build up
        conn.close()
    assert len(errors) == 2  # both tasks were cut off mid-stream


def test_port_close_during_active_drain():
    conn, out, inp = pipe()

    def producer():
        try:
            for i in range(100_000):
                out.send(i)
            return "finished"
        except PortClosedError:
            return "cut off"

    h = spawn(producer)
    time.sleep(0.02)
    out.close()
    assert h.join(10) == "cut off"
    conn.close()


def test_close_vertex_with_peer_blocked_on_same_transition():
    """Sync(a;b) fires {a,b} atomically.  Closing ``a`` while a receiver is
    parked on ``b`` must not hang the receiver: its bounded recv converts to
    a timeout (the transition can never fire again)."""
    conn = compile_source("P(a;b) = Sync(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)

    def blocked_recv():
        with pytest.raises(ProtocolTimeoutError):
            ins[0].recv(timeout=1.0)
        return True

    h = spawn(blocked_recv)
    time.sleep(0.05)
    outs[0].close()
    assert h.join(10)
    conn.close()


def test_two_waiters_same_vertex_both_released_on_close():
    conn, out, inp = pipe()
    released = []

    def blocked_recv(k):
        with pytest.raises(PortClosedError):
            inp.recv()
        released.append(k)

    h1, h2 = spawn(blocked_recv, 1), spawn(blocked_recv, 2)
    time.sleep(0.05)
    inp.close()
    h1.join(10)
    h2.join(10)
    assert sorted(released) == [1, 2]
    conn.close()


def test_double_close_port_and_connector():
    conn, out, inp = pipe()
    out.close()
    out.close()  # idempotent
    conn.close()
    conn.close()  # idempotent
    inp.close()  # closing after the connector closed is fine too
    assert out.closed and inp.closed


def test_concurrent_close_from_many_threads():
    conn, out, inp = pipe()
    barrier = threading.Barrier(4)

    def closer():
        barrier.wait()
        out.close()
        conn.close()

    hs = [spawn(closer) for _ in range(4)]
    for h in hs:
        h.join(10)
    with pytest.raises(PortClosedError):
        out.send(1)


def test_send_after_close_every_port_type():
    # runtime Outport
    conn, out, inp = pipe()
    out.close()
    with pytest.raises(PortClosedError):
        out.send(1)
    with pytest.raises(PortClosedError):
        out.try_send(1)
    # runtime Inport
    inp.close()
    with pytest.raises(PortClosedError):
        inp.recv()
    with pytest.raises(PortClosedError):
        inp.try_recv()
    conn.close()
    # basic-model channel ports
    cout, cin = channel()
    cout.close()
    with pytest.raises(PortClosedError):
        cout.send(1)
    with pytest.raises(PortClosedError):
        cin.recv()  # close marker delivered through the queue
    cout2, cin2 = channel()
    cin2.close()
    with pytest.raises(PortClosedError):
        cin2.recv()


def test_send_after_connector_close_races_with_drain():
    """Hammer submissions racing with a close from another thread; every
    outcome must be clean completion or a typed ReproError."""
    conn = library.connector("Merger", 2)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    outcomes = []
    lock = threading.Lock()

    def worker(port, value):
        try:
            for i in range(10_000):
                port.send((value, i))
            res = "done"
        except ReproError as exc:
            res = type(exc).__name__
        with lock:
            outcomes.append(res)

    def drainer():
        try:
            while True:
                ins[0].recv()
        except ReproError as exc:
            with lock:
                outcomes.append(type(exc).__name__)

    with TaskGroup(join_timeout=30) as g:
        g.spawn(worker, outs[0], 0)
        g.spawn(worker, outs[1], 1)
        g.spawn(drainer)
        time.sleep(0.05)
        conn.close()
    assert len(outcomes) == 3
    assert all(o == "done" or o == "PortClosedError" for o in outcomes)
