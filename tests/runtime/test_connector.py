"""RuntimeConnector: composition strategies, partitioning, caches."""

import pytest

from repro.automata.lazy import LRUCache
from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.ports import mkports
from repro.util.errors import CompilationBudgetExceeded

from tests.conftest import pump


CHAIN = "P(a;b) = Fifo1(a;v) mult Fifo1(v;w) mult Fifo1(w;b)"


def test_jit_vs_aot_same_behaviour():
    prog = compile_source(CHAIN)
    for composition in ("jit", "aot"):
        conn = prog.instantiate_connector("P", composition=composition)
        got = pump(conn, {0: [1, 2, 3]}, {0: 3})
        assert got[0] == [1, 2, 3]


def test_invalid_composition_rejected():
    prog = compile_source(CHAIN)
    with pytest.raises(ValueError):
        prog.instantiate_connector("P", composition="eager")


def test_aot_respects_state_budget():
    conn = library.connector(
        "EarlyAsyncMerger", 8, composition="aot", state_budget=10
    )
    outs, ins = mkports(8, 1)
    with pytest.raises(CompilationBudgetExceeded):
        conn.connect(outs, ins)


def test_partitioning_regions():
    prog = compile_source(CHAIN)
    conn = prog.instantiate_connector("P", use_partitioning=True)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    assert conn.stats()["regions"] == 4  # writer | r+w | r+w | reader
    outs[0].send(1)
    assert ins[0].recv() == 1
    conn.close()


def test_partitioning_same_behaviour_as_monolithic():
    for options in ({}, {"use_partitioning": True}):
        conn = library.connector("SequencedMerger", 3, **options)
        got = pump(
            conn,
            {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]},
            {0: 2, 1: 2, 2: 2},
        )
        assert got == {0: ["a0", "a1"], 1: ["b0", "b1"], 2: ["c0", "c1"]}


def test_bounded_cache_connector_still_correct():
    conn = library.connector(
        "FifoChain", 4, cache_factory=lambda: LRUCache(2)
    )
    got = pump(conn, {0: list(range(20))}, {0: 20})
    assert got[0] == list(range(20))
    # with only 2 cached expansions over >4 visited states, evictions happened
    conn.close()


def test_steps_property_before_connect():
    conn = compile_source(CHAIN).instantiate_connector("P")
    assert conn.steps == 0
    assert conn.stats() == {}
