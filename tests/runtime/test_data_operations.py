"""Data-sensitive primitives at run time: filter, transform, registries.

These exercise the full path DSL → constraint atoms → firing plans →
delivered values, with user-supplied functions and predicates.
"""

import pytest

from repro.automata.constraint import DEFAULT_REGISTRY, FunctionRegistry
from repro.compiler import compile_source
from repro.runtime.ports import mkports
from repro.util.errors import ConstraintError

from tests.conftest import pump


def registry():
    reg = DEFAULT_REGISTRY.merged_with(None)
    reg.register_predicate("even", lambda x: x % 2 == 0)
    reg.register_function("double", lambda x: 2 * x)
    reg.register_function("fmt", lambda x: f"<{x}>")
    return reg


def conn_for(source, name=None, **options):
    program = compile_source(source)
    return program.instantiate_connector(name, registry=registry(), **options)


def test_transform_applies_function():
    conn = conn_for("T(a;b) = Transform<double>(a;b)")
    got = pump(conn, {0: [1, 2, 3]}, {0: 3})
    assert got[0] == [2, 4, 6]


def test_transform_chain_composes():
    conn = conn_for("T(a;b) = Transform<double>(a;m) mult Transform<fmt>(m;b)")
    got = pump(conn, {0: [5]}, {0: 1})
    assert got[0] == ["<10>"]


def test_filter_passes_matching():
    """Filter keeps matching data and *loses* the rest (lossy semantics)."""
    conn = conn_for("F(a;b) = Filter<even>(a;b)")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    # odd values are consumed-and-lost even without a receiver
    for v in (1, 3, 5):
        assert outs[0].try_send(v)
    # an even value needs the receiver (it must flow through)
    assert not outs[0].try_send(2)
    from repro.runtime.tasks import spawn

    h = spawn(ins[0].recv)
    outs[0].send(2)
    assert h.join(5) == 2
    conn.close()


def test_filter_then_buffer():
    conn = conn_for("F(a;b) = Filter<even>(a;m) mult Fifo1(m;b)")
    got = pump(conn, {0: [1, 2, 3, 4, 5, 6]}, {0: 3})
    assert got[0] == [2, 4, 6]


def test_transform_through_fifo():
    """Transforms compose with buffering: value transformed on entry."""
    conn = conn_for("T(a;b) = Transform<double>(a;m) mult Fifo1(m;b)")
    got = pump(conn, {0: [7]}, {0: 1})
    assert got[0] == [14]


def test_missing_function_raises_at_fire_time():
    conn = compile_source(
        "T(a;b) = Transform<nosuch>(a;b)"
    ).instantiate_connector("T")  # default registry lacks 'nosuch'
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    from repro.runtime.tasks import spawn

    h = spawn(ins[0].recv)
    with pytest.raises(KeyError, match="nosuch"):
        outs[0].send(1)
    conn.close()
    with pytest.raises(Exception):
        h.join(5)


def test_registry_isolated_per_connector():
    reg_a = FunctionRegistry()
    reg_a.register_function("f", lambda x: x + 1)
    reg_b = FunctionRegistry()
    reg_b.register_function("f", lambda x: x - 1)
    src = "T(a;b) = Transform<f>(a;b)"
    ca = compile_source(src).instantiate_connector("T", registry=reg_a)
    cb = compile_source(src).instantiate_connector("T", registry=reg_b)
    assert pump(ca, {0: [10]}, {0: 1})[0] == [11]
    assert pump(cb, {0: [10]}, {0: 1})[0] == [9]


def test_verify_flags_unknown_function():
    from repro.automata.verify import verify_protocol

    protocol = compile_source("T(a;b) = Transform<nosuch>(a;b)").protocol("T")
    report = verify_protocol(protocol)
    assert any(f.check == "unknown-function" for f in report.findings)


def test_fifo1full_custom_token():
    """Fifo1Full<v> seeds the buffer with a custom initial datum."""
    conn = compile_source("P(a;b) = Fifo1Full<7>(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    assert ins[0].recv() == 7  # initial token, before any send
    outs[0].send("next")
    assert ins[0].recv() == "next"
    conn.close()


def test_fifo1full_default_token():
    conn = compile_source("P(a;b) = Fifo1Full(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    assert ins[0].recv() == "token"
    conn.close()
