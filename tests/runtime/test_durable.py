"""Unit tests for the durable session store (:mod:`repro.runtime.durable`).

The scenarios here are the store-level half of the durability contract:
codec fidelity, atomic snapshot commits, quarantine-and-fallback on
corruption, write-ahead journal replay, torn-tail tolerance, retention GC,
and the :class:`SessionDurability` hot-path hooks with their metric
families.  The process-level half — real ``SIGKILL`` at seeded points —
lives in ``repro.serve.crashtest`` (CI's crash-recovery-smoke job).
"""

import os
from collections import Counter

import pytest

from repro.connectors import library
from repro.runtime.durable import (
    DurableStore,
    SessionDurability,
    SessionStore,
    canon,
    checkpoint_to_data,
    decode,
    encode,
)
from repro.runtime.errors import (
    DurabilityError,
    SchemaVersionError,
    SnapshotCorruptError,
)
from repro.runtime.faults import torn_write
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.ports import Inport, Outport

OP_TIMEOUT = 10.0


def make_checkpoint(name="Merger", n=2):
    conn = library.connector(name, n, default_timeout=OP_TIMEOUT)
    conn.connect(
        [Outport(f"t:o{i}") for i in range(len(conn.tail_vertices))],
        [Inport(f"t:i{i}") for i in range(len(conn.head_vertices))],
    )
    cp = conn.checkpoint()
    conn.close()
    return cp


# -- codec ------------------------------------------------------------------


@pytest.mark.parametrize("value", [
    None,
    42,
    -1.5,
    "plain",
    True,
    [1, "two", None],
    (1, 2, 3),
    ((1, "a"), (2, "b")),
    {"k": "v", "nested": {"t": (1, 2)}},
    {1: "int-key", (2, 3): "tuple-key"},
    {"%t": "tag-collision", "%m": [1], "%p": None},
    [({"x": (1,)}, [2, (3,)])],
])
def test_codec_roundtrip(value):
    out = decode(encode(value))
    assert out == value
    assert type(out) is type(value)


def test_codec_pickle_fallback():
    value = {"s": {1, 2, 3}, "b": b"\x00\xff"}
    assert decode(encode(value)) == value


def test_canon_distinguishes_tuple_from_list():
    assert canon((1, 2)) != canon([1, 2])
    assert canon((1, 2)) == canon((1, 2))
    assert canon({"a": 1, "b": 2}) == canon({"b": 2, "a": 1})


# -- snapshots --------------------------------------------------------------


def test_snapshot_roundtrip(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        gen, nbytes = store.save_snapshot(
            cp, seq=7,
            delivered=[(1, "a"), (2, ("t", 1))],
            suppress=["x", "x"],
            resubmit=[("r", 0)],
            meta={"tenant": "t0", "workers": 2},
        )
        assert gen == 1 and nbytes > 0
        rec = store.recover()
    finally:
        store.close()
    assert rec.outcome == "restored"
    assert rec.generation == 1
    assert checkpoint_to_data(rec.checkpoint) == checkpoint_to_data(cp)
    assert rec.delivered == [(1, "a"), (2, ("t", 1))]
    assert rec.suppress == Counter({canon("x"): 2})
    assert rec.resubmit == [("r", 0)]
    assert rec.seq == 7
    assert rec.meta == {"tenant": "t0", "workers": 2}
    assert not rec.torn and not rec.quarantined


def test_fresh_directory_recovers_fresh(tmp_path):
    store = SessionStore(tmp_path, "empty")
    rec = store.recover()
    assert rec.outcome == "fresh"
    assert rec.checkpoint is None and rec.seq == 0


def test_retention_must_allow_fallback(tmp_path):
    with pytest.raises(DurabilityError):
        SessionStore(tmp_path, "s0", retention=1)


def test_corrupt_newest_falls_back_and_quarantines(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        store.save_snapshot(cp, seq=1, delivered=[(1, "old")])
        gen2, _ = store.save_snapshot(cp, seq=2, delivered=[(1, "old"),
                                                            (2, "new")])
        path = store._snapshot_path(gen2)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))

        rec = store.recover()
    finally:
        store.close()
    assert rec.outcome == "fallback"
    assert rec.generation == 1
    assert rec.delivered == [(1, "old")]
    assert len(rec.quarantined) == 1
    corrupt = list(store.dir.glob("*.corrupt"))
    assert [p.name for p in corrupt] == [f"snapshot-{gen2:08d}.ckpt.corrupt"]


def test_all_generations_corrupt_is_a_typed_error(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        for seq in (1, 2):
            gen, _ = store.save_snapshot(cp, seq=seq)
            path = store._snapshot_path(gen)
            path.write_bytes(b"garbage, not a framed record\n")
        with pytest.raises(DurabilityError) as exc:
            store.recover()
    finally:
        store.close()
    assert "every snapshot generation is corrupt" in str(exc.value)


def test_truncated_snapshot_is_corrupt(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        gen, _ = store.save_snapshot(cp, seq=1)
        path = store._snapshot_path(gen)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - len(data.splitlines()[-1]) - 1])
        with pytest.raises(SnapshotCorruptError):
            store.load_snapshot(gen)
    finally:
        store.close()


def test_quarantined_generation_number_is_never_reused(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        store.save_snapshot(cp, seq=1)
        gen2, _ = store.save_snapshot(cp, seq=2)
        store._snapshot_path(gen2).write_bytes(b"junk\n")
        store.recover()  # quarantines gen2
        gen3, _ = store.save_snapshot(cp, seq=3)
    finally:
        store.close()
    assert gen3 == gen2 + 1


# -- journal ----------------------------------------------------------------


def test_journal_replay_algebra(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        store.save_snapshot(cp, seq=0)
        store.append("submit", 1, "a")     # delivered below
        store.append("deliver", 2, "a")
        store.append("submit", 3, "b")     # aborted
        store.append("abort", 3, "b")
        store.append("submit", 4, "c")     # admitted, never delivered
        rec = store.recover()
    finally:
        store.close()
    assert rec.delivered == [(2, "a")]
    assert rec.resubmit == ["c"]
    assert rec.suppress == Counter()
    assert rec.seq == 4


def test_journal_deliver_without_matching_submit_suppresses(tmp_path):
    # A deliver whose value sits in the restored engine (no post-snapshot
    # admission): the re-emission must be swallowed, not re-acknowledged.
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        store.save_snapshot(cp, seq=0)
        store.append("deliver", 1, ("v", 0))
        rec = store.recover()
    finally:
        store.close()
    assert rec.delivered == [(1, ("v", 0))]
    assert rec.suppress == Counter({canon(("v", 0)): 1})
    assert rec.suppress_values[canon(("v", 0))] == ("v", 0)
    assert rec.resubmit == []


def test_torn_journal_tail_is_dropped(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        gen, _ = store.save_snapshot(cp, seq=0)
        store.append("deliver", 1, "kept")
        store.append("deliver", 2, "torn-away")
        store.close()
        path = store._journal_path(gen)
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # tear mid-record
        rec = store.recover()
    finally:
        store.close()
    assert rec.torn
    assert rec.delivered == [(1, "kept")]
    # the surviving deliver had no post-snapshot admission: its value sits
    # in the restored engine and must be suppressed on re-emission; the
    # torn record vanished entirely
    assert rec.suppress == Counter({canon("kept"): 1})
    assert canon("torn-away") not in rec.suppress


def test_missing_journal_is_empty(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    try:
        gen, _ = store.save_snapshot(cp, seq=0)
        store.close()
        os.unlink(store._journal_path(gen))
        rec = store.recover()
    finally:
        store.close()
    assert rec.outcome == "restored" and not rec.torn


def test_append_requires_open_journal(tmp_path):
    store = SessionStore(tmp_path, "s0")
    with pytest.raises(DurabilityError):
        store.append("submit", 1, "v")
    with pytest.raises(DurabilityError):
        store.save_snapshot(make_checkpoint(), seq=0)
        store.append("frobnicate", 2, "v")
    store.close()


# -- retention GC -----------------------------------------------------------


def test_gc_keeps_retention_generations(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0", retention=3)
    try:
        for seq in range(6):
            store.save_snapshot(cp, seq=seq)
        gens = store.generations()
        journals = store._journal_generations()
    finally:
        store.close()
    assert gens == [4, 5, 6]
    # journals at/after the oldest kept snapshot survive for replay
    assert journals == [4, 5, 6]


# -- DurableStore root ------------------------------------------------------


def test_durable_store_session_names_roundtrip(tmp_path):
    root = DurableStore(tmp_path)
    cp = make_checkpoint()
    for name in ("plain", "ten@nt/sess ion"):
        s = root.session(name)
        s.save_snapshot(cp, seq=0)
        s.close()
    assert root.sessions() == ["plain", "ten@nt/sess ion"]


# -- SessionDurability ------------------------------------------------------


def test_session_durability_write_ahead_cycle(tmp_path):
    cp = make_checkpoint()
    reg = MetricsRegistry()
    d = SessionDurability(SessionStore(tmp_path, "s0"))
    d.bind(reg)
    try:
        assert d.recover() is None  # fresh
        d.commit(cp, {"tenant": "t0"})

        s1 = d.on_submit("a")
        assert d.on_delivered("a") is True
        s2 = d.on_submit("b")
        d.on_abort(s2, "b")
        assert s2 == s1 + 2  # deliver consumed a sequence number in between
        assert d.book() == [(s1 + 1, "a")]
        assert d.delivered_values() == ["a"]

        counts = dict(reg.counter(
            "repro_durable_journal_records_total").samples())
        assert counts[("s0", "submit")] == 2
        assert counts[("s0", "deliver")] == 1
        assert counts[("s0", "abort")] == 1
        lag = dict(reg.gauge("repro_durable_journal_lag").samples())
        assert lag[("s0",)] == 4
    finally:
        d.close()

    # cold start no. 2: the book survives, the aborted intent does not
    d2 = SessionDurability(SessionStore(tmp_path, "s0"))
    try:
        rec = d2.recover()
        assert rec.outcome == "restored"
        assert d2.delivered_values() == ["a"]
        assert d2.pop_resubmits() == []
    finally:
        d2.close()


def test_session_durability_suppress_consumed_once(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    store.save_snapshot(cp, seq=0, suppress=["v"])
    store.close()

    d = SessionDurability(SessionStore(tmp_path, "s0"))
    try:
        rec = d.recover()
        assert rec.suppress == Counter({canon("v"): 1})
        d.commit(cp)
        assert d.on_delivered("v") is False  # the re-emission: swallowed
        assert d.on_delivered("v") is True   # a fresh copy: acknowledged
        assert d.delivered_values() == ["v"]
    finally:
        d.close()


def test_session_durability_recovery_metrics(tmp_path):
    cp = make_checkpoint()
    store = SessionStore(tmp_path, "s0")
    store.save_snapshot(cp, seq=0)
    store.close()

    reg = MetricsRegistry()
    d = SessionDurability(SessionStore(tmp_path, "s0"))
    d.bind(reg)
    try:
        d.recover()
        d.commit(cp)
        outcomes = dict(reg.counter(
            "repro_durable_recoveries_total").samples())
        assert outcomes[("s0", "restored")] == 1
        nbytes = dict(reg.gauge("repro_durable_snapshot_bytes").samples())
        assert nbytes[("s0",)] > 0
        age = dict(reg.gauge("repro_durable_snapshot_age_seconds").samples())
        assert age[("s0",)] >= 0.0
    finally:
        d.close()


# -- torn_write fault -------------------------------------------------------


def test_torn_write_is_deterministic(tmp_path):
    content = b"".join(b"%08d some-record-payload\n" % i for i in range(20))
    a, b = tmp_path / "a", tmp_path / "b"
    a.write_bytes(content)
    b.write_bytes(content)
    ra = torn_write(a, 1234)
    rb = torn_write(b, 1234)
    assert a.read_bytes() == b.read_bytes()
    assert {k: v for k, v in ra.items() if k != "path"} \
        == {k: v for k, v in rb.items() if k != "path"}
    assert ra["mode"] in ("truncate", "bitflip")
    assert a.read_bytes() != content


def test_torn_write_varies_with_seed(tmp_path):
    content = b"".join(b"%08d some-record-payload\n" % i for i in range(20))
    outs = set()
    for seed in range(8):
        p = tmp_path / f"f{seed}"
        p.write_bytes(content)
        torn_write(p, seed)
        outs.add(p.read_bytes())
    assert len(outs) > 1


def test_torn_write_only_damages_the_tail_record(tmp_path):
    content = b"".join(b"%08d record-%d\n" % (i, i) for i in range(10))
    prefix = content[:content[:-1].rfind(b"\n") + 1]
    for seed in range(8):  # cover both truncate and bitflip modes
        p = tmp_path / f"f{seed}"
        p.write_bytes(content)
        report = torn_write(p, seed)
        got = p.read_bytes()
        # every record but the last is byte-identical
        assert got[:len(prefix)] == prefix, report
        assert got != content, report


def test_torn_write_missing_file_skips(tmp_path):
    assert torn_write(tmp_path / "nope", 0)["mode"] == "skip"
