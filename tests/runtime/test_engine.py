"""Engine behaviour: reactivity, τ-steps, fairness, step counting, stats."""

import threading

import pytest

from repro.compiler import compile_source
from repro.connectors import library
from repro.compiler.fromgraph import connector_from_graph
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup

from tests.conftest import pump


def test_internal_tau_steps_fire_without_tasks():
    """Data must flow between internal fifos with no task involvement."""
    conn = compile_source(
        "P(a;b) = Fifo1(a;v) mult Fifo1(v;w) mult Fifo1(w;b)"
    ).instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    # the value shifts to the last buffer via τ steps; first fifo frees up
    outs[0].send(1)
    outs[0].send(2)
    outs[0].send(3)  # capacity 3 because the chain drained internally
    assert [ins[0].recv() for _ in range(3)] == [1, 2, 3]
    conn.close()


def test_step_counting():
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for i in range(5):
        outs[0].send(i)
        ins[0].recv()
    assert conn.steps == 10  # one push + one pop per round trip
    conn.close()


def test_stats_shape():
    conn = library.connector("Replicator", 2)
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    st = conn.stats()
    assert set(st) >= {"steps", "plans", "regions", "expansions", "cached_states"}
    conn.close()


def test_merger_fairness_round_robin():
    """With both producers always ready, neither starves."""
    conn = connector_from_graph(library.build_graph("Merger", 2))
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    counts = {0: 0, 1: 0}
    stop = threading.Event()

    def producer(i):
        try:
            while not stop.is_set():
                outs[i].send(i)
        except Exception:
            pass

    with TaskGroup() as g:
        g.spawn(producer, 0)
        g.spawn(producer, 1)
        for _ in range(200):
            counts[ins[0].recv()] += 1
        stop.set()
        conn.close()
    assert counts[0] > 20 and counts[1] > 20


def test_nondeterminism_not_biased_to_first_branch():
    """Router with both consumers waiting must use both branches."""
    conn = connector_from_graph(library.build_graph("Router", 2))
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    hits = {0: 0, 1: 0}

    def consumer(i):
        try:
            while True:
                ins[i].recv()
                hits[i] += 1
        except Exception:
            pass

    with TaskGroup() as g:
        g.spawn(consumer, 0)
        g.spawn(consumer, 1)
        for k in range(200):
            outs[0].send(k)
        import time

        time.sleep(0.1)
        conn.close()
    assert hits[0] > 0 and hits[1] > 0


def test_engine_initial_drain_with_initialized_fifo():
    """A token ring with an initialized fifo may fire internal steps at
    connect time; the engine must be quiescent-correct from the start."""
    conn = library.connector("Sequencer", 2)
    outs, _ = mkports(2, 0)
    conn.connect(outs, [])
    assert outs[0].try_send("x")  # slot 1 available immediately
    conn.close()


def test_concurrent_senders_single_vertex_queue():
    """Two threads sending on the same port are serialized, not lost."""
    conn = compile_source("P(a;b) = Fifo(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)

    def sender(lo):
        for i in range(lo, lo + 50):
            outs[0].send(i)

    with TaskGroup() as g:
        g.spawn(sender, 0)
        g.spawn(sender, 100)
        got = [ins[0].recv() for _ in range(100)]
    conn.close()
    assert sorted(got) == list(range(0, 50)) + list(range(100, 150))
    # per-thread order preserved
    a = [v for v in got if v < 100]
    assert a == sorted(a)


def test_maximal_step_mode_runs():
    conn = library.connector("Replicator", 2, step_mode="maximal")
    got = pump(conn, {0: [1]}, {0: 1, 1: 1})
    assert got == {0: [1], 1: [1]}


def test_plan_cache_reused():
    # The interpretive tier's plan cache — force it; under compiled="auto"
    # the generated step functions never touch FiringPlans at fire time.
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", compiled="off"
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for i in range(20):
        outs[0].send(i)
        ins[0].recv()
    assert conn.stats()["plans"] == 2  # push plan + pop plan, compiled once
    conn.close()


def _prefill_sends(engine, backlog):
    """White-box: queue send backlogs directly (the public API parks one OS
    thread per pending op, which would make the schedule nondeterministic).
    The engine is idle here, so touching its queues is safe."""
    from repro.runtime.engine import _Op

    for vertex, values in backlog.items():
        queue = engine._pending_send[vertex]
        region = engine._route[vertex]
        for value in values:
            queue.append(_Op(vertex, value))
        region.pend[vertex] = None
        region.dirty = True


def _prefill_recvs(engine, vertex, count):
    from repro.runtime.engine import _Op

    ops = [_Op(vertex) for _ in range(count)]
    queue = engine._pending_recv[vertex]
    region = engine._route[vertex]
    for op in ops:
        queue.append(op)
    region.pend[vertex] = None
    region.dirty = True
    return ops


# The rr-drift regressions below pin the fix for a fairness bug in the
# candidate scan: the cursor was a single per-region index recomputed as
# ``start + k + 1`` even when candidates between ``start`` and the fired
# one were merely *skipped as momentarily disabled*.  Because the cursor
# was shared across control states whose candidate lists differ in length
# and order, a cycle of states could revisit the exclusive-choice state at
# the same index forever and starve one competing party outright (observed:
# 24/0 splits on EarlyAsyncRouter and LateAsyncMerger, 23/1 on aot
# EarlyAsyncMerger).  The engine now keeps one cursor per control state,
# advanced past the fired candidate, which scans every persistently enabled
# candidate first within n visits of its state.


@pytest.mark.parametrize("composition", ["jit", "aot"])
def test_rr_no_starvation_competing_receivers_exclusive_router(composition):
    """Two competing receivers on an exclusive router: with the producer
    never the bottleneck, both receivers must be served."""
    conn = library.connector("EarlyAsyncRouter", 2, composition=composition)
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    h0, h1 = conn.head_vertices
    ops0 = _prefill_recvs(conn.engine, h0, 60)
    ops1 = _prefill_recvs(conn.engine, h1, 60)
    for i in range(24):
        outs[0].send(i)
    served0 = sum(1 for o in ops0 if o.done)
    served1 = sum(1 for o in ops1 if o.done)
    conn.close()
    assert served0 + served1 == 24
    assert served0 >= 6 and served1 >= 6, (served0, served1)


@pytest.mark.parametrize(
    "name,composition",
    [("EarlyAsyncMerger", "aot"), ("EarlyAsyncMerger", "jit"),
     ("LateAsyncMerger", "aot"), ("LateAsyncMerger", "jit")],
)
def test_rr_no_starvation_competing_senders(name, composition):
    """Two competing senders racing for an exclusive merge: with backlogs
    on both producers, deliveries must interleave, not exhaust one side."""
    conn = library.connector(name, 2, composition=composition)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    v0, v1 = conn.tail_vertices
    _prefill_sends(conn.engine, {v0: ["a"] * 60, v1: ["b"] * 60})
    got = [ins[0].recv() for _ in range(24)]
    conn.close()
    assert "a" in got[:8] and "b" in got[:8], f"one sender starved: {got}"
    assert got.count("a") >= 6 and got.count("b") >= 6, got
