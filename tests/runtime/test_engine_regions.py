"""Region-parallel engine: routing, dirty-region signalling, wakeup slots,
the serial baseline, and the recovery/overload cold paths under per-region
locking (docs/INTERNALS.md §"Engine concurrency model")."""

import threading

import pytest

from repro.compiler import compile_source
from repro.compiler.fromgraph import connector_from_graph
from repro.connectors import library
from repro.connectors.graph import Arc, ConnectorGraph
from repro.connectors.library import BuiltConnector
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup
from repro.util.errors import DeadlockError, ProtocolTimeoutError

OP_TIMEOUT = 5.0


def lanes_connector(k: int, depth: int = 2, **options):
    """One connector holding ``k`` disjoint fifo chains — the canonical
    multi-region workload: partitioning yields (at least) one independent
    region per lane, with no shared buffers between lanes at all."""
    graph = ConnectorGraph()
    tails, heads = [], []
    for lane in range(k):
        for i in range(1, depth + 1):
            graph = graph.add(
                Arc("fifo1", (f"l{lane}x{i - 1}",), (f"l{lane}x{i}",), ())
            )
        tails.append(f"l{lane}x0")
        heads.append(f"l{lane}x{depth}")
    built = BuiltConnector(graph, tuple(tails), tuple(heads))
    options.setdefault("use_partitioning", True)
    return connector_from_graph(built, name=f"Lanes{k}", **options)


def test_lanes_partition_into_independent_regions():
    conn = lanes_connector(4)
    outs, ins = mkports(4, 4)
    conn.connect(outs, ins)
    eng = conn.engine
    assert len(eng.regions) >= 4
    # Routing table: each lane's boundary vertices resolve to regions, and
    # distinct lanes never share one.
    lane_regions = []
    for lane in range(4):
        r = eng._route[f"l{lane}x0"]
        assert r is not None
        lane_regions.append(r)
    assert len({id(r) for r in lane_regions}) == 4
    # Disjoint lanes share no buffers, so no cross-region watchers exist
    # between them.
    for buf, watchers in eng._watchers.items():
        lanes = {w.idx for w in watchers}
        assert len(lanes) >= 2  # only genuinely shared buffers are kept
    conn.close()


@pytest.mark.parametrize("concurrency", ["regions", "global"])
def test_lanes_pump_concurrently(concurrency):
    """k producer/consumer pairs hammer their own lanes from 2k threads;
    every lane stays FIFO and loses nothing — in both engine modes."""
    k, m = 4, 50
    conn = lanes_connector(k, concurrency=concurrency,
                           default_timeout=OP_TIMEOUT)
    outs, ins = mkports(k, k)
    conn.connect(outs, ins)
    got: dict[int, list] = {i: [] for i in range(k)}

    def producer(i):
        for j in range(m):
            outs[i].send((i, j))

    def consumer(i):
        for _ in range(m):
            got[i].append(ins[i].recv())

    with TaskGroup() as g:
        for i in range(k):
            g.spawn(producer, i)
            g.spawn(consumer, i)
    conn.close()
    for i in range(k):
        assert got[i] == [(i, j) for j in range(m)]


def test_cross_region_dirty_signalling_tau_flow():
    """A partitioned chain couples its regions only through decoupled-fifo
    buffers: a send into the first region must propagate to the last via
    the dirty-region chase (internal τ-steps), with no task at the far end
    driving it."""
    conn = library.connector("FifoChain", 3, use_partitioning=True)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    assert len(conn.engine.regions) >= 2
    assert conn.engine._watchers  # chain pieces share decoupled buffers
    # Capacity 3 is only reachable if values shift to the tail buffers
    # across region boundaries as soon as they are pushed.
    outs[0].send(1)
    outs[0].send(2)
    outs[0].send(3)
    assert [ins[0].recv() for _ in range(3)] == [1, 2, 3]
    conn.close()


def test_unknown_vertex_rejected_in_region_mode():
    conn = lanes_connector(2)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    with pytest.raises(KeyError):
        conn.engine.submit_send("nope", 1)
    conn.close()


def test_timeout_withdraws_and_protocol_survives():
    """A timed-out receive is withdrawn under its region lock; the lane is
    not poisoned for later operations."""
    conn = lanes_connector(2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    with pytest.raises(ProtocolTimeoutError):
        ins[1].recv(timeout=0.05)
    outs[1].send("late")
    assert ins[1].recv() == "late"
    conn.close()


def test_deadlock_detection_aggregates_across_regions():
    """Registered-party detection must take a consistent snapshot across
    all region locks: two parties blocked on *different* regions of a
    multi-region connector is a real deadlock when nothing is enabled."""
    conn = lanes_connector(2, depth=1, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    ins[0].set_owner(object(), name="r0")
    ins[1].set_owner(object(), name="r1")
    errors = []

    def starved(i):
        try:
            ins[i].recv()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=starved, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(OP_TIMEOUT)
    assert len(errors) == 2
    assert all(isinstance(e, DeadlockError) for e in errors)
    conn.close()


def test_checkpoint_restore_multi_region():
    """Checkpoint/restore across per-region locks: buffered values and each
    region's control state and fairness cursors survive the round trip."""
    conn = lanes_connector(2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    outs[0].send("x")
    outs[1].send("y")
    cp = conn.checkpoint()
    assert ins[0].recv() == "x"
    assert ins[1].recv() == "y"
    conn.restore(cp)
    assert ins[0].recv() == "x"
    assert ins[1].recv() == "y"
    conn.close()


def test_concurrency_option_validated():
    with pytest.raises(ValueError):
        lanes_connector(1, concurrency="both")


def test_global_mode_stats_and_steps_match_semantics():
    """The serial baseline is the same engine observable-wise: exact step
    counts, same stats shape."""
    results = {}
    for mode in ("regions", "global"):
        conn = lanes_connector(1, concurrency=mode)
        outs, ins = mkports(1, 1)
        conn.connect(outs, ins)
        for i in range(5):
            outs[0].send(i)
            ins[0].recv()
        results[mode] = (conn.steps, conn.stats()["concurrency"])
        conn.close()
    assert results["regions"][0] == results["global"][0]
    assert results["regions"][1] == "regions"
    assert results["global"][1] == "global"


def test_wakeup_slots_complete_blocked_parties():
    """A blocked submitter parks on its own event; a firing driven by the
    *other* side must wake exactly it (no condvar in region mode)."""
    conn = lanes_connector(1, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    got = []

    t = threading.Thread(target=lambda: got.append(ins[0].recv()))
    t.start()
    # Give the receiver time to park on its wakeup slot.
    import time

    time.sleep(0.05)
    outs[0].send("ping")
    t.join(OP_TIMEOUT)
    assert got == ["ping"]
    conn.close()


def test_leave_reparametrizes_under_region_locking():
    """Re-parametrization swaps the region set; survivors keep working and
    late chasers cannot fire replaced (dead) regions."""
    conn = library.connector(
        "Merger", 3, default_timeout=OP_TIMEOUT, use_partitioning=True
    )
    outs, ins = mkports(3, 1)
    conn.connect(outs, ins)
    got = []
    t = threading.Thread(target=lambda: got.extend(ins[0].recv() for _ in range(2)))
    t.start()
    outs[0].send("a")
    outs[1].send("b")
    t.join(OP_TIMEOUT)
    old_regions = list(conn.engine.regions)
    conn.leave(outs[2], task="C")
    assert all(not r.live for r in old_regions)
    assert all(r.live for r in conn.engine.regions)
    t = threading.Thread(target=lambda: got.append(ins[0].recv()))
    t.start()
    outs[0].send("c")
    t.join(OP_TIMEOUT)
    assert got == ["a", "b", "c"]
    conn.close()
