"""Failure injection: closing mid-protocol, deadlock detection, misuse."""

import time

import pytest

from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.ports import mkports
from repro.runtime.tasks import spawn
from repro.util.errors import DeadlockError, PortClosedError

pytestmark = pytest.mark.fault_stress


def test_close_connector_fails_all_blocked_parties():
    conn = library.connector("Barrier", 2)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)

    def blocked_send():
        with pytest.raises(PortClosedError):
            outs[0].send("x")
        return True

    def blocked_recv():
        with pytest.raises(PortClosedError):
            ins[1].recv()
        return True

    h1, h2 = spawn(blocked_send), spawn(blocked_recv)
    time.sleep(0.05)
    conn.close()
    assert h1.join(5) and h2.join(5)


def test_close_single_vertex_blocks_only_that_port():
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send(1)
    outs[0].close()
    with pytest.raises(PortClosedError):
        outs[0].send(2)
    # the buffered message is still deliverable
    assert ins[0].recv() == 1
    conn.close()


def test_send_after_connector_close():
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    conn.close()
    with pytest.raises(PortClosedError):
        outs[0].send(1)


def test_deadlock_detection_two_receivers():
    """Two parties both receiving on an empty fifo = deadlock (when the
    engine knows how many parties there are)."""
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", expected_parties=2
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)

    def recv_expect_deadlock():
        with pytest.raises(DeadlockError):
            ins[0].recv()
        return True

    def second_recv_expect_deadlock():
        # fifo1 is empty and the only other party also receives -> stuck
        with pytest.raises(DeadlockError):
            ins[0].recv()
        return True

    h1 = spawn(recv_expect_deadlock)
    time.sleep(0.02)
    h2 = spawn(second_recv_expect_deadlock)
    assert h1.join(10) and h2.join(10)
    conn.close()


def test_no_false_deadlock_when_progress_possible():
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", expected_parties=2
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)

    def producer():
        for i in range(50):
            outs[0].send(i)

    def consumer():
        return [ins[0].recv() for _ in range(50)]

    h1, h2 = spawn(producer), spawn(consumer)
    h1.join(10)
    assert h2.join(10) == list(range(50))
    conn.close()


def test_deadlock_in_barrier_wrong_usage():
    """A Barrier(2) where only one pair participates deadlocks."""
    conn = library.connector("Barrier", 2, expected_parties=2)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)

    def send_only():
        with pytest.raises(DeadlockError):
            outs[0].send("x")
        return True

    def recv_only():
        with pytest.raises(DeadlockError):
            ins[0].recv()
        return True

    h1 = spawn(send_only)
    h2 = spawn(recv_only)
    assert h1.join(10) and h2.join(10)
    conn.close()


def test_no_spurious_deadlock_from_nonblocking_probes():
    """Detection counts *blocked parties*, not queued ops: probes from a
    non-blocking (or about-to-block) submitter transiently inflate a vertex
    queue past ``expected_parties`` while only one party is truly blocked —
    that must never be declared a deadlock."""
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", expected_parties=2
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send(0)  # fifo now full

    def blocked_sender():
        outs[0].send(1)  # parks until the fifo drains
        return True

    h = spawn(blocked_sender)
    time.sleep(0.05)  # exactly one blocked party from here on
    for _ in range(300):
        # each probe queues a second op at `a` (queue length 2 =
        # expected_parties) before withdrawing it; only blocked-party
        # counting keeps this below the detection threshold
        assert not outs[0].try_send(2)
    assert ins[0].recv() == 0  # drain: unblocks the parked sender
    assert h.join(10) is True
    assert ins[0].recv() == 1
    conn.close()


def test_deadlock_error_carries_diagnostic_dump():
    conn = library.connector("Barrier", 2, expected_parties=2)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)

    def send_only():
        try:
            outs[0].send("x")
        except DeadlockError as exc:
            return exc

    def recv_only():
        with pytest.raises(DeadlockError):
            ins[0].recv()

    h = spawn(send_only)
    h2 = spawn(recv_only)
    err = h.join(10)
    h2.join(10)
    assert isinstance(err, DeadlockError)
    assert err.diagnostic
    assert "pending sends" in str(err)
    assert "region states" in str(err)
    conn.close()


def test_connector_context_manager():
    with compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P") as conn:
        outs, ins = mkports(1, 1)
        conn.connect(outs, ins)
        outs[0].send(1)
        assert ins[0].recv() == 1
    with pytest.raises(PortClosedError):
        outs[0].send(2)


def test_double_connect_rejected():
    from repro.util.errors import RuntimeProtocolError

    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    with pytest.raises(RuntimeProtocolError, match="already connected"):
        conn.connect(*mkports(1, 1))
    conn.close()


def test_signature_overlap_rejected():
    from repro.runtime.connector import RuntimeConnector
    from repro.connectors.primitives import build_automaton
    from repro.connectors.graph import Arc
    from repro.util.errors import RuntimeProtocolError

    auto = build_automaton(Arc("sync", ("x",), ("y",)), "q")
    with pytest.raises(RuntimeProtocolError, match="both sides"):
        RuntimeConnector([auto], ["x"], ["x"])
