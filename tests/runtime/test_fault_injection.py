"""Fault-injection stress: every injected fault must surface as a typed
``ReproError`` in every affected task within the configured timeout — a
hang is the one unacceptable outcome."""

import pytest

from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.faults import (
    ALL_KINDS,
    KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    assert_recovered,
)
from repro.runtime.ports import mkports
from repro.runtime.recovery import RestartPolicy
from repro.runtime.tasks import SupervisedTaskGroup
from repro.util.errors import ReproError

pytestmark = pytest.mark.fault_stress

OP_TIMEOUT = 1.0  # per-operation bound inside tasks
JOIN_TIMEOUT = 15.0  # hard bound on the whole scenario: exceeding it = hang


def run_supervised(conn, tasks):
    """Spawn ``(fn, ports, name)`` triples supervised; join with a hard
    bound; fail the test on any hang; return the handles."""
    g = SupervisedTaskGroup()
    handles = [g.spawn(fn, ports=ports, name=name) for fn, ports, name in tasks]
    for h in handles:
        h.thread.join(JOIN_TIMEOUT)
    hung = [h.name for h in handles if h.alive]
    conn.close()
    assert not hung, f"tasks hung past {JOIN_TIMEOUT}s: {hung}"
    for h in handles:
        assert h.exception is None or isinstance(h.exception, ReproError), (
            f"task {h.name!r} died with untyped {h.exception!r}"
        )
    return handles


@pytest.mark.parametrize("seed", range(24))
def test_pipeline_under_injected_faults(seed):
    """Producer → Fifo1 → consumer under a random 3-fault plan: never hangs,
    only typed errors; fault-free runs deliver everything."""
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", default_timeout=OP_TIMEOUT
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    plan = FaultPlan.random(seed, [outs[0].name, ins[0].name])
    out, inp = plan.wrap(outs[0]), plan.wrap(ins[0])
    n = 12
    got = []

    def producer():
        for i in range(n):
            out.send(i)

    def consumer():
        for _ in range(n):
            got.append(inp.recv())

    handles = run_supervised(
        conn, [(producer, [out], "producer"), (consumer, [inp], "consumer")]
    )
    if all(h.exception is None for h in handles):
        # A drop/crash/close that actually fired must have failed some task,
        # so an all-clean run means at most delays were injected — and a
        # merely-slowed pipeline loses nothing.
        assert all(s.kind == "delay" for s in plan.applied)
        assert got == list(range(n))


@pytest.mark.parametrize("seed", range(100, 108))
def test_replicator_under_injected_faults(seed):
    """1 producer broadcasting to 2 consumers: a fault at any of the three
    ports must convert to typed errors everywhere, never a hang."""
    conn = library.connector("Replicator", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    names = [outs[0].name, ins[0].name, ins[1].name]
    plan = FaultPlan.random(seed, names, n_faults=2, max_op=5)
    out = plan.wrap(outs[0])
    inps = [plan.wrap(p) for p in ins]
    n = 8

    def producer():
        for i in range(n):
            out.send(i)

    def consumer(k):
        return [inps[k].recv() for _ in range(n)]

    run_supervised(
        conn,
        [
            (producer, [out], "producer"),
            (lambda: consumer(0), [inps[0]], "consumer0"),
            (lambda: consumer(1), [inps[1]], "consumer1"),
        ],
    )


def test_plan_is_deterministic():
    names = ["p0", "p1", "p2"]
    a = FaultPlan.random(42, names)
    b = FaultPlan.random(42, names)
    assert sorted(map(str, a.specs)) == sorted(map(str, b.specs))
    c = FaultPlan.random(43, names)
    assert sorted(map(str, a.specs)) != sorted(map(str, c.specs)) or a.specs == []


def test_unlisted_port_is_not_wrapped():
    plan = FaultPlan([FaultSpec("crash", "somewhere-else", 1)])
    outs, ins = mkports(1, 1)
    assert plan.wrap(outs[0]) is outs[0]
    assert plan.wrap(ins[0]) is ins[0]


def test_crash_fault_raises_in_acting_task():
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    plan = FaultPlan([FaultSpec("crash", outs[0].name, 2)])
    out = plan.wrap(outs[0])
    out.send(1)
    with pytest.raises(InjectedFault):
        out.send(2)
    assert plan.applied and plan.applied[0].kind == "crash"
    conn.close()


def test_drop_fault_swallows_one_send():
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", default_timeout=0.3
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    plan = FaultPlan([FaultSpec("drop", outs[0].name, 1)])
    out = plan.wrap(outs[0])
    out.send("lost")  # dropped: never reaches the connector
    ok, _ = ins[0].try_recv()
    assert not ok
    out.send("kept")
    assert ins[0].recv() == "kept"
    conn.close()


def test_close_fault_surfaces_port_closed():
    from repro.util.errors import PortClosedError

    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    plan = FaultPlan([FaultSpec("close", outs[0].name, 1)])
    out = plan.wrap(outs[0])
    with pytest.raises(PortClosedError):
        out.send(1)
    conn.close()


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("explode", "p", 1)
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec("crash", "p", 0)
    # KINDS is frozen: FaultPlan.random's default draw order decides what
    # every existing seeded plan injects, so growing it would silently
    # reschedule them all.  New kinds go into ALL_KINDS and are opted into.
    assert KINDS == ("delay", "drop", "crash", "close")
    assert set(ALL_KINDS) - set(KINDS) == {
        "crash_then_recover",
        "slow_task",
        "flood",
        "latency_spike",
        "worker_kill",
    }
    with pytest.raises(ValueError, match="factor"):
        FaultSpec("flood", "p", 1)  # flood needs factor >= 1
    with pytest.raises(ValueError, match="jitter bound"):
        FaultSpec("latency_spike", "p", 1)  # needs delay > 0


def test_latency_spike_is_seeded_deterministic():
    """The whole jitter sequence replays exactly from (seed, port, at_op):
    two independently wrapped runs of the same plan sleep the identical
    per-operation delays, a different seed draws a different sequence, and
    every draw respects the configured bound."""
    conn_spikes = []
    for _ in range(2):
        conn = compile_source("P(a;b) = Sync(a;b)").instantiate_connector(
            "P", default_timeout=OP_TIMEOUT
        )
        outs, ins = mkports(1, 1)
        conn.connect(outs, ins)
        outs[0].name = "jitter-out"  # pin: the jitter RNG is keyed on the name
        plan = FaultPlan(
            [FaultSpec("latency_spike", outs[0].name, at_op=3,
                       delay=0.003, seed=11)]
        )
        out = plan.wrap(outs[0])
        for i in range(8):
            got = []
            import threading as _t
            r = _t.Thread(target=lambda: got.append(ins[0].recv()))
            r.start()
            out.send(i)
            r.join(OP_TIMEOUT)
        conn.close()
        # armed at op 3 -> ops 3..8 jitter: six draws, all within bound
        assert len(out.spikes) == 6
        assert all(0.0 <= d <= 0.003 for d in out.spikes)
        assert plan.applied_of("latency_spike")  # recorded once, at onset
        conn_spikes.append(list(out.spikes))
    assert conn_spikes[0] == conn_spikes[1]

    other = FaultPlan(
        [FaultSpec("latency_spike", "p", at_op=3, delay=0.003, seed=12)]
    )

    class _FakePort:
        name = "p"

        def send(self, value, timeout=None, policy=None):
            pass

    wrapped = other.wrap(_FakePort())
    for i in range(8):
        wrapped.send(i)
    assert wrapped.spikes != conn_spikes[0]


# --------------------------------------------------------------------------
# Recovery-aware plans: crash_then_recover + RestartPolicy (PR 2)
# --------------------------------------------------------------------------


def test_crash_then_recover_is_recoverable():
    spec = FaultSpec("crash_then_recover", "p", 1)
    assert InjectedFault(spec).recoverable
    assert not InjectedFault(FaultSpec("crash", "p", 1)).recoverable


def run_recovered(conn, plan, tasks, policy):
    """Spawn ``(fn, ports, name)`` triples under a restart policy; join with
    a hard bound; assert every recoverable crash healed; return records."""
    g = SupervisedTaskGroup(restart_policy=policy)
    records = [g.spawn(fn, ports=ports, name=name) for fn, ports, name in tasks]
    for r in records:
        try:
            r.join(JOIN_TIMEOUT)
        except ReproError:
            pass  # typed failures are inspected below
        except TimeoutError:
            pass
    hung = [r.name for r in records if r.alive]
    conn.close()
    assert not hung, f"tasks hung past {JOIN_TIMEOUT}s: {hung}"
    assert_recovered(plan, records)
    return records


@pytest.mark.parametrize("seed", range(200, 216))
def test_pipeline_recovers_from_seeded_crashes(seed):
    """Producer → Fifo1 → consumer under a seeded plan drawing only delays
    and *recoverable* crashes: with a restart policy the run always
    completes, delivering every message exactly once (faults fire before
    the operation is submitted, and each task resumes from its progress)."""
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", default_timeout=OP_TIMEOUT
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    plan = FaultPlan.random(
        seed,
        [outs[0].name, ins[0].name],
        n_faults=4,
        kinds=("delay", "crash_then_recover"),
        max_op=10,
    )
    out, inp = plan.wrap(outs[0]), plan.wrap(ins[0])
    n = 12
    got, sent = [], []

    def producer():
        while len(sent) < n:
            out.send(len(sent))
            sent.append(len(sent))

    def consumer():
        while len(got) < n:
            got.append(inp.recv())

    policy = RestartPolicy(
        max_retries=8,
        backoff_base=0.001,
        backoff_max=0.01,
        seed=seed,
        restart_on=(InjectedFault,),
    )
    records = run_recovered(
        conn,
        plan,
        [(producer, [out], "producer"), (consumer, [inp], "consumer")],
        policy,
    )
    # Exactly-once across restarts: nothing lost, nothing duplicated.
    assert got == list(range(n))
    crashes = plan.applied_of("crash_then_recover")
    assert sum(r.restarts for r in records) == len(crashes)
