"""One failure contract across both programming models.

The generalized model (ports + connector) and the basic model
(:mod:`repro.runtime.channels`) expose the same task-facing API, so a task
written against one can be re-wired to the other.  This file pins the
contract: for every observable failure mode, both models raise the *same*
error types — timeouts, closed ports, peer crashes, and the normalized
``(completed, value)`` form of ``try_recv``.

Each case builds a 1-producer/1-consumer pipe in both models: a compiled
``Fifo1`` connector and a basic channel.
"""

import time

import pytest

from repro.compiler import compile_source
from repro.runtime.channels import ChannelInport, ChannelOutport, channel
from repro.runtime.overload import OverloadPolicy
from repro.runtime.ports import mkports
from repro.runtime.tasks import SupervisedTaskGroup
from repro.util.errors import (
    OverloadError,
    PeerFailedError,
    PortClosedError,
    ProtocolTimeoutError,
    RuntimeProtocolError,
)

pytestmark = pytest.mark.fault_stress

MODELS = ("ports", "channels")


def make_pipe(model, **options):
    """A connected (outport, inport, closer) triple in the given model."""
    if model == "ports":
        conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
            "P", **options
        )
        outs, ins = mkports(1, 1)
        conn.connect(outs, ins)
        return outs[0], ins[0], conn.close
    out, inp = channel()
    return out, inp, lambda: None


@pytest.mark.parametrize("model", MODELS)
def test_send_recv_roundtrip(model):
    out, inp, close = make_pipe(model)
    out.send("x")
    assert inp.recv() == "x"
    close()


@pytest.mark.parametrize("model", MODELS)
def test_recv_timeout_raises_protocol_timeout(model):
    out, inp, close = make_pipe(model)
    with pytest.raises(ProtocolTimeoutError) as exc_info:
        inp.recv(timeout=0.05)
    assert isinstance(exc_info.value, TimeoutError)  # generic handlers work
    # The pipe is still usable after a timeout (the op was withdrawn).
    out.send("late")
    assert inp.recv(timeout=5.0) == "late"
    close()


@pytest.mark.parametrize("model", MODELS)
def test_try_recv_normalized_form(model):
    out, inp, close = make_pipe(model)
    assert inp.try_recv() == (False, None)
    out.send(41)
    ok, value = inp.try_recv()
    assert (ok, value) == (True, 41)
    assert inp.try_recv() == (False, None)
    close()


@pytest.mark.parametrize("model", MODELS)
def test_try_send(model):
    out, inp, close = make_pipe(model)
    assert out.try_send("v") is True  # one free buffer slot in both models
    assert inp.recv() == "v"
    close()


@pytest.mark.parametrize("model", MODELS)
def test_unconnected_port_raises_runtime_protocol_error(model):
    if model == "ports":
        out, inp = mkports(1, 1)
        out, inp = out[0], inp[0]
    else:
        out, inp = ChannelOutport("o"), ChannelInport("i")
    with pytest.raises(RuntimeProtocolError):
        out.send(1)
    with pytest.raises(RuntimeProtocolError):
        inp.recv()


@pytest.mark.parametrize("model", MODELS)
def test_send_after_close_raises_port_closed(model):
    out, inp, close = make_pipe(model)
    out.close()
    with pytest.raises(PortClosedError):
        out.send(1)
    close()


@pytest.mark.parametrize("model", MODELS)
def test_closed_pipe_surfaces_to_receiver(model):
    """Receiving from a pipe whose transport was shut down raises
    PortClosedError in both models (connector close vs. sender-side
    channel close — each model's way of ending the conversation)."""
    out, inp, close = make_pipe(model)
    if model == "ports":
        close()
    else:
        out.close()
    with pytest.raises(PortClosedError):
        inp.recv(timeout=5.0)
    close()


@pytest.mark.parametrize("model", MODELS)
def test_close_with_cause_delivers_that_cause(model):
    """A port failed *with a cause* delivers that cause to the blocked
    peer — through party-registration + detection in the connector model,
    through the channel itself in the basic model."""
    import threading

    out, inp, close = make_pipe(model, detection_grace=0.01)
    out.set_owner(object(), name="sender")
    inp.set_owner(object(), name="receiver")
    observed = []

    def receive():
        try:
            inp.recv(timeout=10.0)
        except Exception as exc:  # noqa: BLE001 - asserted below
            observed.append(exc)

    t = threading.Thread(target=receive)
    t.start()
    time.sleep(0.05)
    out.fail(PeerFailedError("sender", RuntimeError("boom")))
    t.join(15.0)
    assert not t.is_alive()
    assert len(observed) == 1 and isinstance(observed[0], PeerFailedError)
    assert observed[0].task == "sender"
    close()


# --------------------------------------------------------------------------
# Overload contract: the same policy means the same observable behavior
# --------------------------------------------------------------------------


def make_bounded_pipe(model, policy=None):
    """A one-slot pipe with an overload policy in the given model, plus the
    model's dead-letter accessors.

    The bound plays the same role in both models: the connector model caps
    the *pending-op queue* (``max_pending=0`` over a one-place Fifo1), the
    basic model caps the *buffer* (``capacity=1``) — either way, one value
    fits and the policy decides what happens to the next one.
    """
    if model == "ports":
        conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
            "P", overload=policy, default_timeout=5.0
        )
        outs, ins = mkports(1, 1)
        conn.connect(outs, ins)
        return outs[0], ins[0], conn.close, conn.dead_letters, conn.shed_count
    out, inp = channel(capacity=1, policy=policy)
    return out, inp, out.close, out.dead_letters, out.shed_count


def _pol(kind):
    return OverloadPolicy(kind, max_pending=0) if kind != "block" else None


@pytest.mark.parametrize("model", MODELS)
def test_overload_block_default_times_out_when_full(model):
    out, inp, close, dead, shed = make_bounded_pipe(model)
    out.send(1)
    with pytest.raises(ProtocolTimeoutError):
        out.send(2, timeout=0.05)
    assert shed() == 0 and dead() == ()
    assert inp.recv() == 1  # nothing was lost, nothing was captured
    close()


@pytest.mark.parametrize("model", MODELS)
def test_overload_fail_fast_raises_and_pipe_recovers(model):
    out, inp, close, dead, shed = make_bounded_pipe(model, _pol("fail_fast"))
    out.send(1)
    with pytest.raises(OverloadError):
        out.send(2)
    assert shed() == 0  # fail_fast rejects; it never captures
    assert inp.recv() == 1
    out.send(3)  # the rejected op was withdrawn — the pipe still works
    assert inp.recv() == 3
    close()


@pytest.mark.parametrize("model", MODELS)
def test_overload_shed_newest_same_values_both_models(model):
    out, inp, close, dead, shed = make_bounded_pipe(model, _pol("shed_newest"))
    out.send(1)
    out.send(2)  # full: the incoming value is shed, the send "succeeds"
    assert shed() == 1
    assert [l.value for l in dead()] == [2]
    assert {l.policy for l in dead()} == {"shed_newest"}
    assert inp.recv() == 1
    close()


@pytest.mark.parametrize("model", MODELS)
def test_overload_shed_oldest_conserves_values(model):
    """``shed_oldest`` picks its victim from what the model can reach — the
    buffered head in the basic model, the oldest *pending op* in the
    connector model — so the shed value may differ.  The contract is
    conservation: exactly one value delivered, exactly one dead-lettered,
    and together they are exactly what was sent."""
    out, inp, close, dead, shed = make_bounded_pipe(model, _pol("shed_oldest"))
    out.send(1)
    out.send(2)
    assert shed() == 1
    delivered = inp.recv()
    shed_values = [l.value for l in dead()]
    assert sorted([delivered] + shed_values) == [1, 2]
    close()


@pytest.mark.parametrize("model", MODELS)
def test_overload_per_call_policy_override(model):
    out, inp, close, dead, shed = make_bounded_pipe(model)  # default: block
    out.send("keep")
    out.send("spill", policy=OverloadPolicy("shed_newest", max_pending=0))
    assert [l.value for l in dead()] == ["spill"]
    assert inp.recv() == "keep"
    close()


@pytest.mark.parametrize("model", MODELS)
def test_supervised_crash_propagates_as_peer_failure(model):
    """The same supervised program observes the same error type in both
    models when a peer task dies: PeerFailedError naming the dead task."""
    out, inp, close = make_pipe(model, detection_grace=0.01)
    observed = []

    def consumer():
        try:
            while True:
                inp.recv(timeout=10.0)
        except PeerFailedError as exc:
            observed.append(exc)

    def crasher():
        raise RuntimeError("worker died")

    with pytest.raises(RuntimeError, match="worker died"):
        with SupervisedTaskGroup() as g:
            g.spawn(consumer, ports=[inp], name="consumer")
            g.spawn(crasher, ports=[out], name="worker")
    close()
    assert len(observed) == 1
    assert observed[0].task == "worker"
    assert isinstance(observed[0].cause, RuntimeError)
