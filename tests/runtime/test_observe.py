"""Observability layer: metric conservation, exporters, and the contract.

Pins the PR's acceptance criteria:

* **conservation laws** — under an overloaded shed_newest farm the metric
  totals balance exactly: ``delivered + shed == submitted`` and every
  count the registry reports equals the runtime's own books
  (``conn.steps``, ``shed_count()``, …);
* **exporter goldens** — the Prometheus, JSON, and Chrome-trace renderings
  of a hand-built registry/trace are byte-stable (``golden/``);
* **disabled by default** — an unmetered connector runs the
  pre-observability code path and writes nothing;
* **cross-model contract** — the basic channel model emits the same
  metric families (:data:`CONTRACT_FAMILIES`) as the connector model, so
  a dashboard built for one reads the other;
* **catalogue completeness** — every name in :data:`CATALOGUE` appears in
  docs/OBSERVABILITY.md's table and vice versa (docs cannot drift).
"""

import json
import pathlib
import re

import pytest

from repro.connectors import library
from repro.runtime.metrics import (
    CATALOGUE,
    CONTRACT_FAMILIES,
    LATENCY_STRIDE,
    Histogram,
    MetricsRegistry,
)
from repro.runtime.observe import (
    chrome_trace,
    render_chrome_trace,
    render_json,
    render_prometheus,
    run_observed_farm,
    snapshot,
)
from repro.runtime.overload import OverloadPolicy
from repro.runtime.ports import mkports
from repro.runtime.trace import TraceEvent

GOLDEN = pathlib.Path(__file__).parent / "golden"

OP_TIMEOUT = 5.0


def families_by_name(registry):
    return {fam.name: fam for fam in registry.collect()}


def sample_value(registry, name, labels):
    fam = families_by_name(registry)[name]
    for labelvalues, value in fam.samples():
        if labelvalues == labels:
            return value
    raise AssertionError(f"{name}{labels} not found in samples")


# --------------------------------------------------------------------------
# Registry semantics
# --------------------------------------------------------------------------


def test_catalogue_resolves_specs():
    reg = MetricsRegistry()
    fam = reg.counter("repro_engine_steps_total")
    assert fam.labelnames == ("connector",)
    assert "Fig. 12" in fam.help
    # idempotent: same family object comes back
    assert reg.counter("repro_engine_steps_total") is fam


def test_undeclared_names_need_explicit_spec():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="not in the runtime catalogue"):
        reg.counter("app_jobs_total")
    fam = reg.counter("app_jobs_total", labelnames=("queue",), help="app")
    fam.labels("q0").inc(3)
    assert sample_value(reg, "app_jobs_total", ("q0",)) == 3.0


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="is a counter"):
        reg.gauge("repro_engine_steps_total")
    reg.counter("repro_engine_steps_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.histogram("repro_engine_steps_total")


def test_histogram_fixed_buckets():
    h = Histogram(boundaries=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.cumulative() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]
    assert h.count == 4 and h.sum == pytest.approx(6.05)
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram(boundaries=(1.0, 1.0))


def test_callback_exceptions_isolated():
    reg = MetricsRegistry()
    fam = reg.gauge("repro_buffer_occupancy")
    fam.set_callback("bad", lambda: 1 / 0)
    fam.set_callback("good", lambda: [(("c",), 7.0)])
    assert (("c",), 7.0) in fam.samples()
    fam.set_callback("good", None)  # removal
    assert fam.samples() == []


# --------------------------------------------------------------------------
# Conservation laws (the farm, metered)
# --------------------------------------------------------------------------


@pytest.mark.fault_stress
def test_conservation_laws_under_shedding():
    """delivered + shed == submitted, as seen by *both* the runtime's own
    books and the metric registry — and the step counter is conn.steps."""
    run = run_observed_farm(jobs=120, workers=2, stall_phase=False)
    s = run.summary
    assert s["delivered"] + s["shed"] == s["submitted"] == 120

    reg = run.registry
    c = "EarlyAsyncRouter"
    tail = [lv for lv, _ in families_by_name(reg)[
        "repro_ops_submitted_total"].samples() if lv[2] == "send"][0][1]
    submitted = sample_value(
        reg, "repro_ops_submitted_total", (c, tail, "send"))
    assert submitted == s["submitted"]

    completed_fam = families_by_name(reg)["repro_ops_completed_total"]
    delivered = sum(
        v for lv, v in completed_fam.samples() if lv[2] == "recv")
    assert delivered == s["delivered"]
    # a shed send releases its submitter but never *fires*: it counts as
    # submitted, not completed — submitted == completed + shed, exactly
    sends_done = sample_value(
        reg, "repro_ops_completed_total", (c, tail, "send"))
    assert sends_done == s["delivered"]
    assert submitted == sends_done + s["shed"]

    shed_fam = families_by_name(reg)["repro_overload_shed_total"]
    shed = sum(v for lv, v in shed_fam.samples() if lv[0] == c)
    assert shed == s["shed"]
    assert all(lv[2] == "shed_newest" for lv, _ in shed_fam.samples())

    assert sample_value(reg, "repro_engine_steps_total", (c,)) == s["steps"]
    # scan effort: every fired step examined >= 1 candidate
    assert sample_value(
        reg, "repro_engine_scan_candidates_total", (c,)) >= s["steps"]


@pytest.mark.fault_stress
def test_stall_and_quarantine_metrics():
    """Phase 2 of the observed farm: the watchdog's stall, the group's
    quarantine/departure, and the laggard's books all land in metrics."""
    run = run_observed_farm(jobs=40, workers=2, stall_phase=True)
    reg = run.registry
    assert run.summary["stalls"] >= 1
    assert run.summary["quarantined"]
    assert sample_value(
        reg, "repro_watchdog_stalls_total", ("laggard",)) >= 1
    assert sample_value(
        reg, "repro_watchdog_quarantines_total", ("laggard",)) == 1
    # a quarantine is counted as a quarantine, not a departure — the
    # departures counter is reserved for *crash*-driven re-parametrization
    departures = families_by_name(reg)["repro_task_departures_total"]
    assert all(lv != ("laggard",) for lv, _ in departures.samples())
    # no duplicate label sets anywhere, even after the quarantine's
    # re-parametrization re-attached the gauge callbacks
    for fam in reg.collect():
        labelsets = [lv for lv, _ in fam.samples()]
        assert len(labelsets) == len(set(labelsets)), fam.name


def test_latency_histogram_sampled():
    """The step-latency histogram records ~1/LATENCY_STRIDE of fired
    steps; counters stay exact."""
    reg = MetricsRegistry()
    conn = library.connector("FifoChain", 3, metrics=reg,
                             default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for j in range(40):
        outs[0].send(j)
        assert ins[0].recv() == j
    hist = sample_value(
        reg, "repro_engine_step_latency_seconds", ("FifoChain",))
    steps = sample_value(reg, "repro_engine_steps_total", ("FifoChain",))
    assert steps == conn.steps
    assert 1 <= hist.count <= steps // LATENCY_STRIDE + 1
    conn.close()


def test_disabled_by_default_zero_writes():
    """Without ``metrics=`` the engine holds no hook bundle and never
    touches the metric-only accumulators — the pre-observability path."""
    conn = library.connector("FifoChain", 3, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for j in range(20):
        outs[0].send(j)
        ins[0].recv()
    assert conn.engine._metrics is None
    assert conn.engine._scan_count == 0  # only ever advanced when metered
    assert conn.steps > 0
    conn.close()


# --------------------------------------------------------------------------
# Cross-model contract: channels speak the same metric language
# --------------------------------------------------------------------------


def test_cross_model_metric_contract():
    from repro.runtime.channels import channel

    reg = MetricsRegistry()
    out, inp = channel(
        capacity=1, policy=OverloadPolicy("shed_newest", max_pending=1),
        metrics=reg, name="jobs",
    )
    out.send(0)                 # buffered: completes
    out.send(1)                 # buffer full: shed
    got = [inp.recv()]
    out.send(2)                 # buffered again
    out.send(3)                 # shed
    got.append(inp.recv())
    assert got == [0, 2]

    names = reg.family_names()
    assert set(CONTRACT_FAMILIES) <= names
    # every contract family is catalogued with identical type/labels for
    # both models (the registry resolves both from the same CATALOGUE)
    for n in CONTRACT_FAMILIES:
        assert n in CATALOGUE

    sub = sample_value(reg, "repro_ops_submitted_total",
                       ("jobs", "jobs", "send"))
    done = sample_value(reg, "repro_ops_completed_total",
                        ("jobs", "jobs", "send"))
    shed = sample_value(reg, "repro_overload_shed_total",
                        ("jobs", "jobs", "shed_newest"))
    # same ledger as the connector model: submitted == completed + shed
    assert sub == 4
    assert done == 2
    assert shed == 2
    recv_done = sample_value(reg, "repro_ops_completed_total",
                             ("jobs", "jobs", "recv"))
    assert recv_done == 2

    # a connector fills a superset of the channel surface
    reg2 = MetricsRegistry()
    conn = library.connector("FifoChain", 2, metrics=reg2,
                             default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send("x")
    ins[0].recv()
    conn.close()
    assert set(CONTRACT_FAMILIES) <= reg2.family_names()


# --------------------------------------------------------------------------
# Exporter goldens (hand-built inputs: no live timestamps anywhere)
# --------------------------------------------------------------------------


def golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    steps = reg.counter("repro_engine_steps_total")
    steps.labels("Alternator").inc(42)
    lat = reg.histogram("repro_engine_step_latency_seconds",
                        buckets=(0.001, 0.01, 0.1))
    child = lat.labels("Alternator")
    for v in (0.0005, 0.002, 0.002, 0.05, 2.0):
        child.observe(v)
    shed = reg.counter("repro_overload_shed_total")
    shed.labels("Alternator", "x0", "shed_newest").inc(7)
    gauge = reg.gauge("repro_buffer_occupancy")
    gauge.set_callback("test", lambda: [(("Alternator",), 3.0)])
    return reg


def golden_events() -> list[TraceEvent]:
    return [
        TraceEvent(
            seq=0, region=0, label=frozenset({"x0", "x1"}),
            completed_sends=("x0",), completed_recvs=("x1",),
            deliveries=(("x1", "v0"),), t=10.0005,
            waits=(("x0", 0.0004), ("x1", 0.0001)),
        ),
        TraceEvent(  # a tau-step: fired, completed nothing
            seq=1, region=0, label=frozenset({"m"}),
            completed_sends=(), completed_recvs=(), deliveries=(),
            t=10.0010, waits=(),
        ),
        TraceEvent(  # recorded without timing: must be skipped
            seq=2, region=0, label=frozenset({"x0"}),
            completed_sends=("x0",), completed_recvs=(), deliveries=(),
        ),
        TraceEvent(
            seq=3, region=0, label=frozenset({"x0", "x1"}),
            completed_sends=("x0",), completed_recvs=("x1",),
            deliveries=(("x1", "v1"),), t=10.0030,
            waits=(("x0", 0.002), ("x1", 0.0)),
        ),
    ]


def check_golden(name: str, text: str):
    path = GOLDEN / name
    assert path.exists(), f"golden file {path} missing"
    assert text == path.read_text(), (
        f"{name} drifted from golden output; if the change is intended, "
        f"regenerate with tests/runtime/golden/regen.py"
    )


def test_prometheus_golden():
    check_golden("metrics.prom", render_prometheus(golden_registry()))


def test_json_golden():
    check_golden("metrics.json", render_json(golden_registry()) + "\n")


def test_chrome_trace_golden():
    text = render_chrome_trace(
        golden_events(), t0=10.0, vertex_parties={"x0": "producer"})
    check_golden("trace.json",
                 json.dumps(json.loads(text), indent=2) + "\n")


def test_prometheus_escaping_and_floats():
    reg = MetricsRegistry()
    fam = reg.counter("app_weird_total", labelnames=("k",),
                      help='has "quotes" and\nnewline')
    fam.labels('va"l\\ue').inc(1.5)
    text = render_prometheus(reg)
    assert '# HELP app_weird_total has \\"quotes\\" and\\nnewline' in text
    assert 'k="va\\"l\\\\ue"' in text
    assert "app_weird_total" in text and "1.5" in text


def test_json_snapshot_shape():
    snap = snapshot(golden_registry())
    byname = {f["name"]: f for f in snap["families"]}
    hist = byname["repro_engine_step_latency_seconds"]["samples"][0]
    assert hist["buckets"][-1][0] == "+Inf"
    assert hist["buckets"][-1][1] == hist["count"] == 5
    assert byname["repro_buffer_occupancy"]["samples"][0]["value"] == 3.0
    json.dumps(snap)  # JSON-serializable throughout


def test_chrome_trace_structure():
    doc = chrome_trace(golden_events(), t0=10.0,
                       vertex_parties={"x0": "producer"})
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    lanes = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert lanes == {"steps", "producer:x0", "x1"}
    slices = [e for e in events if e["ph"] == "X"]
    # 3 timed steps + 4 operation spans; the untimed event contributes 0
    assert len([s for s in slices if s["tid"] == 0]) == 3
    assert len([s for s in slices if s["tid"] != 0]) == 4
    assert all(s["ts"] >= 0 and s["dur"] >= 1 for s in slices)
    span = [s for s in slices if s["name"] == "send x0" and s["args"]["seq"] == 3][0]
    assert span["ts"] == pytest.approx(1000, abs=1)   # (10.003 - 0.002 - 10) s -> us
    assert span["dur"] == pytest.approx(2000, abs=1)


# --------------------------------------------------------------------------
# Catalogue completeness: the docs cannot drift
# --------------------------------------------------------------------------


def test_every_metric_documented():
    doc = (pathlib.Path(__file__).parents[2] / "docs" /
           "OBSERVABILITY.md").read_text()
    documented = set(re.findall(r"`(repro_[a-z0-9_]+)`", doc))
    missing = set(CATALOGUE) - documented
    assert not missing, f"metrics missing from docs/OBSERVABILITY.md: {missing}"
    phantom = {
        n for n in documented
        if n not in CATALOGUE
        and not any(n.startswith(c) for c in CATALOGUE)  # _bucket/_sum/_count
    }
    assert not phantom, f"docs mention unknown metrics: {phantom}"


def test_contract_families_all_catalogued():
    assert set(CONTRACT_FAMILIES) <= set(CATALOGUE)
    for name, (kind, labels, help_) in CATALOGUE.items():
        assert name.startswith("repro_")
        assert kind in ("counter", "gauge", "histogram")
        assert labels and help_
