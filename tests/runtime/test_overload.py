"""Overload layer: backpressure policies, dead letters, watchdog, drain.

Pins the PR's acceptance criteria:

* under sustained producer overload a bounded work farm with
  ``shed_newest`` keeps forward progress, and the dead-letter buffer
  accounts for *exactly* the shed values (delivered ∪ shed == sent,
  disjoint — an invariant independent of thread scheduling);
* an injected ``slow_task`` is flagged by the watchdog and quarantined
  without stalling its peers;
* ``drain()`` flushes every buffered value before closing;
* ``block`` stays the default — the overload layer is strictly opt-in.
"""

import threading
import time

import pytest

from repro.connectors import library
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.overload import DeadLetterBuffer, OverloadPolicy
from repro.runtime.ports import mkports
from repro.runtime.tasks import SupervisedTaskGroup
from repro.runtime.watchdog import Watchdog
from repro.util.errors import (
    OverloadError,
    PortClosedError,
    ProtocolTimeoutError,
    RuntimeProtocolError,
    StallError,
)

pytestmark = pytest.mark.fault_stress

OP_TIMEOUT = 5.0
JOIN_TIMEOUT = 20.0


def fifo_chain(n=1, **options):
    """A connected n-stage fifo chain: (connector, outport, inport)."""
    conn = library.connector("FifoChain", n, default_timeout=OP_TIMEOUT, **options)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    return conn, outs[0], ins[0]


# --------------------------------------------------------------------------
# OverloadPolicy / DeadLetterBuffer data types
# --------------------------------------------------------------------------


def test_policy_validation():
    assert OverloadPolicy().kind == "block"
    with pytest.raises(ValueError, match="unknown overload policy"):
        OverloadPolicy("explode")
    with pytest.raises(ValueError, match="max_pending"):
        OverloadPolicy("fail_fast")  # non-block kinds need the bound
    with pytest.raises(ValueError, match=">= 0"):
        OverloadPolicy("shed_newest", max_pending=-1)
    with pytest.raises(ValueError, match="dead_letter_capacity"):
        OverloadPolicy("shed_newest", max_pending=1, dead_letter_capacity=0)
    assert OverloadPolicy("shed_oldest", max_pending=0).sheds
    assert not OverloadPolicy("fail_fast", max_pending=0).sheds


def test_dead_letter_buffer_exact_counts_past_eviction():
    dead = DeadLetterBuffer()
    for i in range(5):
        dead.capture("v", i, "shed_newest", step=i, capacity=2)
    # The bounded buffer keeps the newest two; the count never lies.
    assert [l.value for l in dead.of("v")] == [3, 4]
    assert dead.count("v") == 5 and dead.count() == 5
    assert len(dead) == 2
    seqs = [l.seq for l in dead.all()]
    assert seqs == sorted(seqs)


def test_policy_on_unknown_vertex_rejected():
    conn = library.connector(
        "FifoChain", 1, overload={"nope": OverloadPolicy("fail_fast", max_pending=0)}
    )
    outs, ins = mkports(1, 1)
    with pytest.raises(RuntimeProtocolError, match="unknown boundary vertex"):
        conn.connect(outs, ins)


def test_shed_policy_on_sink_rejected():
    conn = library.connector("FifoChain", 1)
    sink = conn.head_vertices[0]
    conn.overload = {sink: OverloadPolicy("shed_newest", max_pending=0)}
    outs, ins = mkports(1, 1)
    with pytest.raises(RuntimeProtocolError, match="sends only"):
        conn.connect(outs, ins)


# --------------------------------------------------------------------------
# Policy semantics on the connector model
# --------------------------------------------------------------------------


def test_block_is_the_default_and_still_blocks():
    conn, out, inp = fifo_chain()
    out.send(1)  # fills the single fifo
    with pytest.raises(ProtocolTimeoutError):
        out.send(2, timeout=0.1)  # block policy: waits, then times out
    assert conn.shed_count() == 0 and conn.dead_letters() == ()
    conn.close()


def test_fail_fast_raises_and_withdraws():
    conn, out, inp = fifo_chain(overload=OverloadPolicy("fail_fast", max_pending=0))
    out.send(1)
    with pytest.raises(OverloadError) as err:
        out.send(2)
    assert err.value.max_pending == 0
    # The rejected op was withdrawn: the buffered value flows untouched.
    assert inp.recv() == 1
    out.send(3)
    assert inp.recv() == 3
    conn.close()


def test_shed_newest_drops_incoming_and_reports_success():
    conn, out, inp = fifo_chain(overload=OverloadPolicy("shed_newest", max_pending=0))
    out.send(1)
    out.send(2)  # buffer full → shed, but the send "succeeds"
    out.send(3)
    assert conn.shed_count() == 2
    assert [l.value for l in conn.dead_letters()] == [2, 3]
    assert {l.policy for l in conn.dead_letters()} == {"shed_newest"}
    assert inp.recv() == 1
    conn.close()


def test_shed_oldest_releases_the_displaced_waiter():
    conn, out, inp = fifo_chain(overload=OverloadPolicy("shed_oldest", max_pending=1))
    out.send(1)  # in the fifo
    order: list = []
    t2 = threading.Thread(target=lambda: (out.send(2), order.append(2)))
    t2.start()
    time.sleep(0.1)  # 2 is queued (fifo full) and its sender parked
    t3 = threading.Thread(target=lambda: (out.send(3), order.append(3)))
    t3.start()
    # 3 overflows the bound: the *oldest* queued value (2) is shed and its
    # blocked sender completes as if sent; 3 takes the freed slot.
    t2.join(JOIN_TIMEOUT)
    assert order == [2]
    assert [l.value for l in conn.dead_letters()] == [2]
    assert inp.recv() == 1
    assert inp.recv() == 3
    t3.join(JOIN_TIMEOUT)
    conn.close()


def test_per_operation_policy_override():
    conn, out, inp = fifo_chain()  # default: block
    out.send("important")
    # A low-priority message opts into shedding for this one call.
    out.send("optional", policy=OverloadPolicy("shed_newest", max_pending=0))
    assert [l.value for l in conn.dead_letters()] == ["optional"]
    assert inp.recv() == "important"
    conn.close()


def test_dead_letters_record_vertex_and_step():
    conn, out, inp = fifo_chain(overload=OverloadPolicy("shed_newest", max_pending=0))
    out.send(1)
    out.send(2)
    (letter,) = conn.dead_letters()
    assert letter.vertex == conn.tail_vertices[0]
    assert letter.seq == 0 and letter.step >= 1
    assert conn.dead_letters(letter.vertex) == (letter,)
    conn.close()


def test_stats_report_shed_and_draining():
    conn, out, inp = fifo_chain(overload=OverloadPolicy("shed_newest", max_pending=0))
    out.send(1)
    out.send(2)
    stats = conn.stats()
    assert stats["shed"] == 1 and stats["draining"] is False
    conn.engine.begin_drain()
    assert conn.stats()["draining"] is True
    conn.close()


# --------------------------------------------------------------------------
# Acceptance: bounded work farm under 4× producer overload
# --------------------------------------------------------------------------


def test_work_farm_4x_overload_shed_newest_accounts_exactly():
    """Producers push ~4× what the workers drain.  With ``shed_newest`` on
    the job intake the farm must keep forward progress (no deadlock, queue
    bounded at ``max_pending``) and every job must end up in exactly one of
    two places: a worker's result or the dead-letter buffer."""
    n_workers, n_jobs = 2, 120
    route = library.connector(
        "EarlyAsyncRouter",
        n_workers,
        overload=OverloadPolicy("shed_newest", max_pending=0),
        default_timeout=OP_TIMEOUT,
    )
    (job_out,), _ = mkports(1, 0)
    _, worker_ins = mkports(0, n_workers)
    route.connect([job_out], worker_ins)

    done: list = []
    done_lock = threading.Lock()

    def worker(rank: int):
        try:
            while True:
                job = worker_ins[rank].recv(timeout=1.0)
                time.sleep(0.002)  # bounded service rate — overload is real
                with done_lock:
                    done.append(job)
        except (PortClosedError, ProtocolTimeoutError):
            return

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(n_workers)]
    for t in threads:
        t.start()
    t0 = time.monotonic()
    for job in range(n_jobs):
        job_out.send(job)  # never parks: shed_newest keeps the producer live
    producer_elapsed = time.monotonic() - t0
    route.drain(timeout=OP_TIMEOUT)  # flush admitted jobs to workers, close
    for t in threads:
        t.join(JOIN_TIMEOUT)

    shed = [l.value for l in route.dead_letters()]
    # Exact conservation, independent of scheduling: every job delivered
    # once or dead-lettered once, never both, never lost.
    assert sorted(done + shed) == list(range(n_jobs))
    assert route.shed_count() == len(shed) == n_jobs - len(done)
    assert shed, "4x overload must actually shed"
    assert done, "shedding must not starve the farm"
    # Forward progress: the producer never waited on a slow worker.
    assert producer_elapsed < OP_TIMEOUT


def test_work_farm_fail_fast_keeps_producer_responsive():
    route = library.connector(
        "EarlyAsyncRouter",
        2,
        overload=OverloadPolicy("fail_fast", max_pending=0),
        default_timeout=OP_TIMEOUT,
    )
    (job_out,), _ = mkports(1, 0)
    _, worker_ins = mkports(0, 2)
    route.connect([job_out], worker_ins)

    accepted = rejected = 0
    for job in range(40):
        try:
            job_out.send(job)
            accepted += 1
        except OverloadError:
            rejected += 1
        if job % 5 == 4:  # periodic consumer keeps some capacity free
            for inp in worker_ins:
                ok, _ = inp.try_recv()
    assert accepted and rejected
    assert accepted + rejected == 40
    assert route.shed_count() == 0  # fail_fast rejects, it never sheds
    route.close()


# --------------------------------------------------------------------------
# Watchdog: stall detection and quarantine
# --------------------------------------------------------------------------


def test_watchdog_flags_slow_task_and_quarantine_frees_peers():
    """A ``slow_task``-injected producer goes quiet while its peer keeps
    the engine firing: the watchdog must flag *that* party (not the busy
    peers) and quarantine it so the rest of the farm continues."""
    gather = library.connector("EarlyAsyncMerger", 2, default_timeout=OP_TIMEOUT)
    outs, (result_in,) = mkports(2, 1)
    gather.connect(outs, [result_in])

    plan = FaultPlan([FaultSpec("slow_task", outs[1].name, at_op=2, delay=5.0)])
    slow_out = plan.wrap(outs[1])

    collected: list = []
    group = SupervisedTaskGroup(join_timeout=JOIN_TIMEOUT, on_departure="reparametrize")

    def fast_producer():
        for i in range(200):
            outs[0].send(("fast", i))
            time.sleep(0.001)

    def slow_producer():
        for i in range(10):
            slow_out.send(("slow", i))  # op 2 onward crawls for 5s apiece

    def consumer():
        try:
            while True:
                collected.append(result_in.recv(timeout=2.0))
        except (PortClosedError, ProtocolTimeoutError):
            return

    fast = group.spawn(fast_producer, ports=[outs[0]], name="fast")
    slow = group.spawn(slow_producer, ports=[outs[1]], name="slow")
    cons = group.spawn(consumer, ports=[result_in], name="consumer")

    dog = Watchdog(
        [gather],
        probe_interval=0.02,
        stall_after=0.25,
        group=group,
        escalate=True,
    )
    with dog:
        deadline = time.monotonic() + JOIN_TIMEOUT
        while not dog.reports and time.monotonic() < deadline:
            time.sleep(0.01)
    assert dog.reports, "slow task never flagged"
    report = dog.reports[0]
    assert report.task == "slow"
    assert report.steps_since > 0  # peers were firing — a stall, not a deadlock
    assert report.idle >= 0.25

    fast.join(JOIN_TIMEOUT)
    # The quarantine re-parametrized the slow party away: peers finished at
    # full speed, the stalled task departed instead of failing the group.
    assert slow.departed and isinstance(slow.exception, StallError)
    gather.close()
    cons.join(JOIN_TIMEOUT)
    assert len([v for v in collected if v[0] == "fast"]) == 200
    assert group.departures and group.departures[0].task == "slow"


def test_watchdog_stays_silent_when_nothing_fires():
    """Both parties blocked, engine quiescent — that is deadlock-detector
    territory; the watchdog must not flag anyone (steps_since_active == 0)."""
    conn = library.connector("Barrier", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)
    conn.engine.register_party("p0", name="p0", vertex=conn.tail_vertices[0])
    conn.engine.register_party("p1", name="p1", vertex=conn.tail_vertices[1])

    # One party shows up; the other never does.  Nothing can fire.
    t = threading.Thread(target=lambda: outs[0].try_send("x"))
    t.start()
    t.join(JOIN_TIMEOUT)
    dog = Watchdog([conn], probe_interval=0.02, stall_after=0.05)
    time.sleep(0.15)  # idle well past stall_after...
    assert dog.probe() == []  # ...but no step fired: not a stall
    assert dog.reports == ()
    conn.close()


def test_watchdog_validation():
    with pytest.raises(ValueError, match="stall_after"):
        Watchdog([], stall_after=0.0)
    with pytest.raises(ValueError, match="group"):
        Watchdog([], escalate=True)


# --------------------------------------------------------------------------
# Graceful drain
# --------------------------------------------------------------------------


def test_drain_flushes_buffered_values_before_close():
    """Every value buffered at drain time reaches the consumer before the
    close lands — degradation in order: refuse, flush, then close."""
    conn, out, inp = fifo_chain(3)
    for v in ("a", "b", "c"):
        out.send(v)  # fills the 3-stage chain

    got: list = []

    def consumer():
        try:
            while True:
                got.append(inp.recv(timeout=2.0))
        except PortClosedError:
            got.append("closed")

    t = threading.Thread(target=consumer)
    t.start()
    time.sleep(0.05)
    conn.drain(timeout=OP_TIMEOUT)
    t.join(JOIN_TIMEOUT)
    assert got == ["a", "b", "c", "closed"]


def test_draining_connector_refuses_new_sends():
    conn, out, inp = fifo_chain()
    out.send(1)
    conn.engine.begin_drain()
    with pytest.raises(PortClosedError, match="draining"):
        out.send(2)
    with pytest.raises(PortClosedError, match="draining"):
        out.try_send(3)
    assert inp.recv() == 1  # receives keep flushing
    conn.close()


def test_drain_timeout_raises_and_leaves_connector_open():
    conn, out, inp = fifo_chain()
    out.send(1)  # buffered, and no consumer will ever take it
    with pytest.raises(ProtocolTimeoutError, match="drain"):
        conn.drain(timeout=0.1)
    assert inp.recv() == 1  # still open: the flush can be completed by hand
    conn.drain(timeout=OP_TIMEOUT)  # now empty — completes and closes


def test_drain_token_ring_respects_initial_occupancy():
    """A sequencer permanently holds its turn token; ``drained`` compares
    against the initial occupancy, not zero, so the ring drains cleanly."""
    conn = library.connector("Sequencer", 2, default_timeout=OP_TIMEOUT)
    outs, _ = mkports(2, 0)
    conn.connect(outs, [])
    conn.drain(timeout=OP_TIMEOUT)
    with pytest.raises(PortClosedError):
        outs[0].send("late")


def test_group_shutdown_drains_and_joins():
    """``SupervisedTaskGroup.shutdown`` = drain every connector + treat the
    resulting PortClosedError exits as clean ends, not crashes."""
    conn, out, inp = fifo_chain(2)
    group = SupervisedTaskGroup(join_timeout=JOIN_TIMEOUT)
    got: list = []

    def consumer():
        while True:  # no shutdown handling at all — the closed port ends it
            got.append(inp.recv(timeout=2.0))

    group.spawn(consumer, ports=[inp], name="consumer")
    out.send("x")
    out.send("y")
    group.shutdown(drain_timeout=OP_TIMEOUT)
    assert got == ["x", "y"]
    assert all(r.exception is None for r in group.handles)


# --------------------------------------------------------------------------
# Overload fault kinds (seeded chaos building blocks)
# --------------------------------------------------------------------------


def test_flood_fault_sheds_surplus_exactly():
    conn, out, inp = fifo_chain(overload=OverloadPolicy("shed_newest", max_pending=0))
    plan = FaultPlan([FaultSpec("flood", out.name, at_op=1, factor=3)])
    flooded = plan.wrap(out)
    flooded.send("v")  # 3 surplus copies + the real one; fifo holds 1
    assert plan.applied_of("flood")
    assert inp.recv() == "v"
    assert conn.shed_count() == 3  # exactly the surplus, nothing else
    conn.close()


def test_flood_without_policy_only_buffers():
    conn, out, inp = fifo_chain(3)
    plan = FaultPlan([FaultSpec("flood", out.name, at_op=1, factor=2)])
    plan.wrap(out).send("v")
    # No policy: the surplus is real traffic — buffered, then received.
    assert [inp.recv() for _ in range(3)] == ["v", "v", "v"]
    conn.close()


def test_slow_task_fault_is_persistent():
    conn, out, inp = fifo_chain()
    plan = FaultPlan([FaultSpec("slow_task", out.name, at_op=2, delay=0.05)])
    slow = plan.wrap(out)
    t0 = time.monotonic()
    slow.send(1)
    assert time.monotonic() - t0 < 0.04  # op 1: full speed
    assert inp.recv() == 1
    for i in range(2, 5):  # ops 2..4: every one crawls
        t0 = time.monotonic()
        slow.send(i)
        assert time.monotonic() - t0 >= 0.05
        assert inp.recv() == i
    assert len(plan.applied_of("slow_task")) == 1  # recorded once, at onset
    conn.close()


def test_seeded_plan_with_overload_kinds_is_reproducible():
    kinds = ("delay", "flood", "slow_task", "crash_then_recover")
    a = FaultPlan.random(seed=42, port_names=["p", "q"], n_faults=6, kinds=kinds)
    b = FaultPlan.random(seed=42, port_names=["p", "q"], n_faults=6, kinds=kinds)
    assert sorted(map(str, a.specs)) == sorted(map(str, b.specs))
    for spec in a.specs:
        if spec.kind == "flood":
            assert spec.factor >= 1
        if spec.kind == "slow_task":
            assert spec.delay > 0
