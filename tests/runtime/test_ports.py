"""Ports: binding discipline, closing, non-blocking variants."""

import pytest

from repro.compiler import compile_source
from repro.runtime.ports import Inport, Outport, mkports
from repro.util.errors import PortClosedError, RuntimeProtocolError


def pipe_connector():
    return compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P")


def test_unbound_port_rejects_ops():
    out = Outport("o")
    with pytest.raises(RuntimeProtocolError, match="not connected"):
        out.send(1)
    inp = Inport("i")
    with pytest.raises(RuntimeProtocolError, match="not connected"):
        inp.recv()


def test_double_bind_rejected():
    conn1, conn2 = pipe_connector(), pipe_connector()
    outs, ins = mkports(1, 1)
    conn1.connect(outs, ins)
    outs2, ins2 = mkports(1, 1)
    with pytest.raises(RuntimeProtocolError, match="already connected"):
        conn2.connect(outs, ins2)
    conn1.close()


def test_send_recv_through_fifo():
    conn = pipe_connector()
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send("v")
    assert ins[0].recv() == "v"
    conn.close()


def test_try_send_respects_capacity():
    conn = pipe_connector()
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    assert outs[0].try_send(1)
    assert not outs[0].try_send(2)  # fifo1 full
    assert ins[0].recv() == 1
    assert outs[0].try_send(2)
    conn.close()


def test_try_recv():
    conn = pipe_connector()
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    ok, v = ins[0].try_recv()
    assert not ok and v is None
    outs[0].send(9)
    ok, v = ins[0].try_recv()
    assert ok and v == 9
    conn.close()


def test_closed_port_raises():
    conn = pipe_connector()
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].close()
    with pytest.raises(PortClosedError):
        outs[0].send(1)
    conn.close()


def test_close_unblocks_peer():
    conn = pipe_connector()
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    from repro.runtime.tasks import spawn

    def blocked_recv():
        with pytest.raises(PortClosedError):
            ins[0].recv()
        return "unblocked"

    h = spawn(blocked_recv)
    import time

    time.sleep(0.05)
    ins[0].close()
    assert h.join(5) == "unblocked"
    conn.close()


def test_close_idempotent():
    out = Outport()
    out.close()
    out.close()
    assert out.closed


def test_context_manager_closes():
    with Outport("o") as out:
        pass
    assert out.closed


def test_mkports_naming():
    outs, ins = mkports(2, 1, prefix="x")
    assert [p.name for p in outs] == ["xout0", "xout1"]
    assert ins[0].name == "xin0"


def test_connect_arity_mismatch():
    conn = pipe_connector()
    outs, ins = mkports(2, 1)
    with pytest.raises(RuntimeProtocolError, match="expects 1 outports"):
        conn.connect(outs, ins)
