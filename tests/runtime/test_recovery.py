"""The recovery layer: checkpoints, restart policies, re-parametrization.

PR 1 made failures detected; this layer makes them survivable.  The two
acceptance scenarios of the issue live here: (1) crashing one of n parties
mid-protocol under a RestartPolicy completes with the *same trace* as an
uninterrupted run; (2) when the restart budget is exhausted, the connector
re-parametrizes to n−1 parties and the survivors drain without deadlock.
"""

import threading
import time

import pytest

from repro.connectors import library
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFault, assert_recovered
from repro.runtime.ports import mkports
from repro.runtime.recovery import RestartPolicy
from repro.runtime.tasks import SupervisedTaskGroup
from repro.runtime.trace import TraceRecorder
from repro.util.errors import (
    CheckpointError,
    CompilationError,
    PeerFailedError,
    RuntimeProtocolError,
)

OP_TIMEOUT = 5.0
pytestmark = pytest.mark.fault_stress

JOIN_TIMEOUT = 20.0

FAST = dict(backoff_base=0.001, backoff_factor=1.0, jitter=0.0)


def resumable_sender(port, values, sent):
    """A sender that survives restarts: progress lives outside the run, so a
    relaunch resumes exactly where the crash interrupted (faults fire before
    the operation is submitted — nothing is duplicated or lost)."""

    def run():
        while len(sent) < len(values):
            port.send(values[len(sent)])
            sent.append(values[len(sent)])

    return run


def resumable_receiver(port, count, got):
    def run():
        while len(got) < count:
            got.append(port.recv())

    return run


# --------------------------------------------------------------------------
# RestartPolicy
# --------------------------------------------------------------------------


def test_restart_policy_delay_is_deterministic():
    p = RestartPolicy(seed=7)
    assert p.delay("worker", 2) == p.delay("worker", 2)
    assert p.delay("worker", 2) != p.delay("worker", 3)
    assert p.delay("worker", 2) != p.delay("other", 2)
    # The same seed reproduces the same schedule; a different seed does not.
    assert RestartPolicy(seed=7).delay("w", 1) == RestartPolicy(seed=7).delay("w", 1)
    assert RestartPolicy(seed=7).delay("w", 1) != RestartPolicy(seed=8).delay("w", 1)


def test_restart_policy_backoff_shape():
    p = RestartPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35, jitter=0.0)
    assert p.delay("t", 1) == pytest.approx(0.1)
    assert p.delay("t", 2) == pytest.approx(0.2)
    assert p.delay("t", 3) == pytest.approx(0.35)  # capped
    assert p.delay("t", 9) == pytest.approx(0.35)
    jittered = RestartPolicy(backoff_base=0.1, jitter=0.5)
    assert 0.05 <= jittered.delay("t", 1) <= 0.15


def test_restart_policy_should_restart():
    p = RestartPolicy(max_retries=2, restart_on=(ValueError,))
    assert p.should_restart(ValueError(), 1)
    assert p.should_restart(ValueError(), 2)
    assert not p.should_restart(ValueError(), 3)  # budget exhausted
    assert not p.should_restart(TypeError(), 1)  # not in restart_on
    assert not p.should_restart(KeyboardInterrupt(), 1)  # never BaseException


def test_restart_policy_validation():
    with pytest.raises(ValueError):
        RestartPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RestartPolicy(jitter=1.0)


# --------------------------------------------------------------------------
# Supervised restarts (no connector involved)
# --------------------------------------------------------------------------


def test_supervised_task_restarts_until_success():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise ValueError("transient")
        return "done"

    with SupervisedTaskGroup(restart_policy=RestartPolicy(max_retries=5, **FAST)) as g:
        h = g.spawn(flaky, name="flaky")
    assert h.join(JOIN_TIMEOUT) == "done"
    assert h.restarts == 2
    assert h.exception is None
    assert len(attempts) == 3


def test_supervised_task_restart_budget_exhausts():
    def hopeless():
        raise ValueError("permanent")

    g = SupervisedTaskGroup(restart_policy=RestartPolicy(max_retries=2, **FAST))
    h = g.spawn(hopeless, name="hopeless")
    with pytest.raises(ValueError, match="permanent"):
        h.join(JOIN_TIMEOUT)
    assert h.restarts == 2
    with pytest.raises(ValueError):
        g.join_all()


def test_non_retryable_exception_fails_immediately():
    runs = []

    def dies():
        runs.append(1)
        raise TypeError("not retryable")

    g = SupervisedTaskGroup(
        restart_policy=RestartPolicy(max_retries=5, restart_on=(ValueError,), **FAST)
    )
    h = g.spawn(dies, name="dies")
    with pytest.raises(TypeError):
        h.join(JOIN_TIMEOUT)
    assert h.restarts == 0 and len(runs) == 1


def test_no_policy_behaves_like_seed_supervision():
    """Without a RestartPolicy a crash propagates to peers immediately —
    the PR 1 contract is unchanged."""
    conn = library.connector("Replicator", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    got, errors = [], []

    def consumer(p):
        try:
            while True:
                got.append(p.recv())
        except PeerFailedError as exc:
            errors.append(exc)

    def crasher():
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        with SupervisedTaskGroup() as g:
            g.spawn(consumer, ins[0], ports=[ins[0]], name="c0")
            g.spawn(consumer, ins[1], ports=[ins[1]], name="c1")
            h = g.spawn(crasher, ports=[outs[0]], name="crasher")
    conn.close()
    assert isinstance(h.exception, RuntimeError)
    assert len(errors) == 2
    assert all(e.task == "crasher" for e in errors)


def test_on_departure_validation():
    with pytest.raises(ValueError, match="on_departure"):
        SupervisedTaskGroup(on_departure="explode")


# --------------------------------------------------------------------------
# Acceptance 1: crash one of n parties mid-protocol; after restart the run
# completes with the same trace as an uninterrupted one.
# --------------------------------------------------------------------------


def _run_alternator(n, rounds, plan=None, policy=None):
    tracer = TraceRecorder()
    conn = library.connector(
        "Alternator", n, default_timeout=OP_TIMEOUT, tracer=tracer
    )
    outs, ins = mkports(n, 1)
    conn.connect(outs, ins)
    if plan is not None:
        outs = plan.wrap_all(outs)
        ins = plan.wrap_all(ins)
    got: list = []
    sents = [[] for _ in range(n)]
    records = []
    with SupervisedTaskGroup(restart_policy=policy) as g:
        for i in range(n):
            values = [f"v{i}r{r}" for r in range(rounds)]
            records.append(
                g.spawn(
                    resumable_sender(outs[i], values, sents[i]),
                    ports=[outs[i]],
                    name=f"p{i}",
                )
            )
        records.append(
            g.spawn(
                resumable_receiver(ins[0], n * rounds, got),
                ports=[ins[0]],
                name="consumer",
            )
        )
    labels = [e.label for e in tracer.events]
    steps = conn.steps
    conn.close()
    return got, labels, steps, records


def test_crash_mid_protocol_restart_same_trace():
    n, rounds = 3, 4
    ref_got, ref_labels, ref_steps, _ = _run_alternator(n, rounds)

    # Crash producer 1 on its 2nd send and the consumer on its 5th recv;
    # both resume from their progress state after a supervised restart.
    policy = RestartPolicy(max_retries=3, restart_on=(InjectedFault,), **FAST)
    tracer = TraceRecorder()
    conn = library.connector(
        "Alternator", n, default_timeout=OP_TIMEOUT, tracer=tracer
    )
    outs, ins = mkports(n, 1)
    conn.connect(outs, ins)
    plan = FaultPlan(
        [
            FaultSpec("crash_then_recover", outs[1].name, 2),
            FaultSpec("crash_then_recover", ins[0].name, 5),
        ],
        name="midcrash",
    )
    wouts = plan.wrap_all(outs)
    wins = plan.wrap_all(ins)
    got: list = []
    sents = [[] for _ in range(n)]
    with SupervisedTaskGroup(restart_policy=policy) as g:
        records = [
            g.spawn(
                resumable_sender(wouts[i], [f"v{i}r{r}" for r in range(rounds)], sents[i]),
                ports=[wouts[i]],
                name=f"p{i}",
            )
            for i in range(n)
        ]
        records.append(
            g.spawn(
                resumable_receiver(wins[0], n * rounds, got),
                ports=[wins[0]],
                name="consumer",
            )
        )
    labels = [e.label for e in tracer.events]
    steps = conn.steps
    conn.close()

    assert len(plan.applied) == 2, plan.applied
    assert_recovered(plan, records)
    # Trace equivalence with the uninterrupted run: same deliveries in the
    # same order, same fired labels, same global step count.
    assert got == ref_got
    assert labels == ref_labels
    assert steps == ref_steps


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_restart_jitter_is_reproducible_end_to_end(seed):
    """Two runs with the same policy seed schedule identical backoffs."""
    p1 = RestartPolicy(seed=seed, jitter=0.5)
    p2 = RestartPolicy(seed=seed, jitter=0.5)
    sched1 = [p1.delay(f"t{i}", a) for i in range(4) for a in (1, 2, 3)]
    sched2 = [p2.delay(f"t{i}", a) for i in range(4) for a in (1, 2, 3)]
    assert sched1 == sched2


# --------------------------------------------------------------------------
# Acceptance 2: retries exhausted -> re-parametrize to n−1 and drain.
# --------------------------------------------------------------------------


def test_exhausted_retries_reparametrize_merger():
    n, k = 3, 4
    conn = library.connector("Merger", n, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(n, 1)
    conn.connect(outs, ins)
    got: list = []

    def producer(i):
        def run():
            for r in range(k):
                outs[i].send(f"v{i}r{r}")

        return run

    def hopeless():
        raise RuntimeError("dead for good")

    policy = RestartPolicy(max_retries=1, **FAST)
    with SupervisedTaskGroup(
        restart_policy=policy, on_departure="reparametrize"
    ) as g:
        g.spawn(producer(0), ports=[outs[0]], name="p0")
        g.spawn(producer(1), ports=[outs[1]], name="p1")
        dead = g.spawn(hopeless, ports=[outs[2]], name="p2")
        g.spawn(
            resumable_receiver(ins[0], 2 * k, got), ports=[ins[0]], name="consumer"
        )

    # The dead party's failure was absorbed: join did not raise, the
    # connector shrank to 2 producers, and every surviving value arrived.
    assert dead.departed and isinstance(dead.exception, RuntimeError)
    assert dead.restarts == 1
    assert len(conn.tail_vertices) == n - 1
    assert sorted(got) == sorted(f"v{i}r{r}" for i in range(2) for r in range(k))
    assert len(g.departures) == 1
    report = g.departures[0]
    assert report.task == "p2" and len(report.removed_vertices) == 1
    assert outs[2].closed and not outs[0].closed
    conn.close()


def test_departed_consumer_unblocks_replicator_producer():
    """A producer blocked mid-send on a full-sync replicator survives the
    permanent death of one consumer: the pending send migrates across the
    re-parametrization and fires with the remaining consumers."""
    n, k = 3, 5
    conn = library.connector("Replicator", n, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, n)
    conn.connect(outs, ins)
    gots = [[] for _ in range(n)]

    def dead_consumer():
        raise RuntimeError("never receives")

    with SupervisedTaskGroup(
        restart_policy=RestartPolicy(max_retries=0, **FAST),
        on_departure="reparametrize",
    ) as g:
        g.spawn(
            resumable_sender(outs[0], list(range(k)), []),
            ports=[outs[0]],
            name="producer",
        )
        for i in range(n - 1):
            g.spawn(
                resumable_receiver(ins[i], k, gots[i]),
                ports=[ins[i]],
                name=f"c{i}",
            )
        g.spawn(dead_consumer, ports=[ins[n - 1]], name="dead")

    assert gots[0] == list(range(k))
    assert gots[1] == list(range(k))
    assert len(conn.head_vertices) == n - 1
    assert len(g.departures) == 1
    conn.close()


def test_explicit_leave():
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    got: list = []

    def recv_some(count):
        t = threading.Thread(
            target=lambda: got.extend(ins[0].recv() for _ in range(count))
        )
        t.start()
        return t

    t = recv_some(2)
    outs[0].send("a1")
    outs[0].send("a2")
    t.join(JOIN_TIMEOUT)

    report = conn.leave(outs[0], task="A")
    assert report.task == "A"
    assert report.removed_vertices and report in conn.departures
    # Port A is now unusable; port B was rebound and keeps working.
    assert outs[0].closed
    assert len(conn.tail_vertices) == 1

    t = recv_some(2)
    outs[1].send("b1")
    outs[1].send("b2")
    t.join(JOIN_TIMEOUT)
    assert got == ["a1", "a2", "b1", "b2"]
    conn.close()


def test_leave_requires_compiled_protocol():
    conn = library.connector("Merger", 2, from_dsl=False, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    with pytest.raises(RuntimeProtocolError, match="compiled protocol"):
        conn.leave(outs[0])
    conn.close()


def test_scalar_party_cannot_leave():
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    with pytest.raises(CompilationError, match="scalar"):
        conn.leave(ins[0])  # the single consumer is a scalar parameter
    conn.close()


def test_last_array_element_cannot_leave():
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    conn.leave(outs[0])
    with pytest.raises(CompilationError, match="empty"):
        conn.leave(outs[1])  # would leave a 0-producer merger
    conn.close()


def test_leave_rejects_foreign_port():
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    stranger, _ = mkports(1, 0)
    with pytest.raises(RuntimeProtocolError, match="not connected"):
        conn.leave(stranger[0])
    conn.close()


# --------------------------------------------------------------------------
# Re-parametrization down to a single surviving party (arity 2 → 1)
# --------------------------------------------------------------------------


def test_arity_2_to_1_with_pending_recv():
    """2→1 with a receive blocked across the leave: the pending op migrates
    (same deque object, renamed vertex) and the survivor serves it."""
    conn = library.connector("Merger", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    got: list = []
    t = threading.Thread(target=lambda: got.append(ins[0].recv()))
    t.start()
    time.sleep(0.05)  # let the recv commit before the departure

    report = conn.leave(outs[0], task="A")
    assert not report.dropped_buffers
    outs[1].send("b1")
    t.join(JOIN_TIMEOUT)
    assert got == ["b1"]
    conn.close()


@pytest.mark.parametrize("mode", ["jit", "aot"])
def test_arity_2_to_1_buffered_value_migrates(mode):
    """2→1 on a buffering connector with a value in flight: the survivor's
    fifo content must be *deliverable* after the shrink — the fresh regions'
    control states are reconciled with the migrated occupancies, not left
    at their (empty-fifo) initial states."""
    conn = library.connector(
        "EarlyAsyncMerger", 2, composition=mode, default_timeout=OP_TIMEOUT
    )
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    outs[1].send("keep")  # buffered in the survivor's fifo

    report = conn.leave(outs[0], task="A")
    assert not report.dropped_buffers
    assert ins[0].recv() == "keep"
    # The shrunk protocol keeps cycling (state, not just contents, is sane).
    outs[1].send("next")
    assert ins[0].recv() == "next"
    conn.close()


def test_arity_3_to_2_buffered_values_migrate():
    """Same reconciliation at higher arity: both survivors' buffered values
    stay deliverable after the middle producer departs."""
    conn = library.connector("EarlyAsyncMerger", 3, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(3, 1)
    conn.connect(outs, ins)
    outs[0].send("first")
    outs[2].send("third")

    report = conn.leave(outs[1], task="B")
    assert not report.dropped_buffers
    assert sorted(ins[0].recv() for _ in range(2)) == ["first", "third"]
    conn.close()


def test_arity_2_to_1_unaccountable_contents_dropped_and_reported():
    """2→1 where the departed party's protocol state cannot be carried: the
    alternator's turn-tracking token belongs to the removed index, so it is
    dropped *and reported* — and the shrunk connector still works."""
    conn = library.connector("Alternator", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)

    report = conn.leave(outs[1], task="B")
    assert report.dropped_buffers, "lost token must be reported, not silent"
    outs[0].send("x")
    assert ins[0].recv() == "x"
    conn.close()


# --------------------------------------------------------------------------
# Checkpoints
# --------------------------------------------------------------------------


def test_checkpoint_requires_quiescence():
    conn = library.connector("FifoChain", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)

    blocker = threading.Thread(target=ins[0].recv)  # blocks: chain is empty
    blocker.start()
    deadline = time.monotonic() + JOIN_TIMEOUT
    while conn.engine.quiescent and time.monotonic() < deadline:
        time.sleep(0.005)
    with pytest.raises(CheckpointError, match="quiescent"):
        conn.checkpoint()
    outs[0].send("unblock")
    blocker.join(JOIN_TIMEOUT)
    assert conn.engine.quiescent
    conn.checkpoint()  # now fine
    conn.close()


def test_checkpoint_rewinds_same_connector():
    conn = library.connector("FifoChain", 2, default_timeout=OP_TIMEOUT)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send("x")
    cp = conn.checkpoint()
    assert ins[0].recv() == "x"
    ok, _ = ins[0].try_recv()
    assert not ok  # drained
    conn.restore(cp)  # rewind: the value is buffered again
    assert ins[0].recv() == "x"
    conn.close()


def test_checkpoint_restores_into_fresh_instance():
    a = library.connector("FifoChain", 3, default_timeout=OP_TIMEOUT)
    outs_a, ins_a = mkports(1, 1)
    a.connect(outs_a, ins_a)
    outs_a[0].send(1)
    outs_a[0].send(2)
    cp = a.checkpoint()
    a.close()

    b = library.connector("FifoChain", 3, default_timeout=OP_TIMEOUT)
    outs_b, ins_b = mkports(1, 1)
    b.connect(outs_b, ins_b)
    b.restore(cp)
    assert b.steps == cp.steps
    assert [ins_b[0].recv(), ins_b[0].recv()] == [1, 2]
    b.close()


def test_checkpoint_structural_mismatch_rejected():
    a = library.connector("FifoChain", 2, default_timeout=OP_TIMEOUT)
    outs_a, ins_a = mkports(1, 1)
    a.connect(outs_a, ins_a)
    cp = a.checkpoint()
    a.close()

    b = library.connector("FifoChain", 3, default_timeout=OP_TIMEOUT)
    outs_b, ins_b = mkports(1, 1)
    b.connect(outs_b, ins_b)
    with pytest.raises(CheckpointError):
        b.restore(cp)
    # A failed restore leaves the target untouched and usable.
    outs_b[0].send("still works")
    assert ins_b[0].recv() == "still works"
    b.close()


def test_checkpoint_on_unconnected_connector():
    conn = library.connector("Merger", 2)
    with pytest.raises(RuntimeProtocolError, match="not connected"):
        conn.checkpoint()
