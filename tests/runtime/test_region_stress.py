"""Seeded multi-threaded stress for the region-parallel engine.

Hammers the cold paths that stop the world (checkpoint, leave/
re-parametrization, drain, watchdog quarantine) *concurrently* with
region-parallel firing on multiple OS threads, and closes each scenario
with the conservation law of tests/runtime/test_observe.py:
``delivered + shed == submitted`` — both in the runtime's own books and in
the metric registry.  Every schedule is seeded (``runtime/faults.py``), so
a red run names the exact seed to replay.
"""

import threading
import time

import pytest

from repro.compiler.fromgraph import connector_from_graph
from repro.connectors import library
from repro.connectors.graph import Arc, ConnectorGraph
from repro.connectors.library import BuiltConnector
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.overload import OverloadPolicy
from repro.runtime.ports import mkports
from repro.runtime.tasks import SupervisedTaskGroup, TaskGroup
from repro.runtime.watchdog import Watchdog
from repro.util.errors import (
    CheckpointError,
    DeadlockError,
    PortClosedError,
    ProtocolTimeoutError,
    StallError,
)

pytestmark = pytest.mark.fault_stress

OP_TIMEOUT = 10.0
JOIN_TIMEOUT = 30.0


def lanes_connector(k: int, depth: int = 2, **options):
    graph = ConnectorGraph()
    tails, heads = [], []
    for lane in range(k):
        for i in range(1, depth + 1):
            graph = graph.add(
                Arc("fifo1", (f"l{lane}x{i - 1}",), (f"l{lane}x{i}",), ())
            )
        tails.append(f"l{lane}x0")
        heads.append(f"l{lane}x{depth}")
    built = BuiltConnector(graph, tuple(tails), tuple(heads))
    options.setdefault("use_partitioning", True)
    return connector_from_graph(built, name=f"Lanes{k}", **options)


def sample_value(registry, name, labels):
    for fam in registry.collect():
        if fam.name == name:
            for labelvalues, value in fam.samples():
                if labelvalues == labels:
                    return value
    raise AssertionError(f"{name}{labels} not found")


@pytest.mark.parametrize("seed", [11, 23])
def test_checkpoint_drain_hammer_conservation(seed):
    """k lanes fire region-parallel under seeded fault delays while one
    thread hammers checkpoint() and the main thread finishes with a drain;
    the books must balance exactly afterwards."""
    k, m = 4, 40
    registry = MetricsRegistry()
    conn = lanes_connector(
        k,
        default_timeout=OP_TIMEOUT,
        metrics=registry,
        overload=OverloadPolicy(kind="shed_oldest", max_pending=4),
    )
    outs, ins = mkports(k, k)
    conn.connect(outs, ins)
    # Seeded delay schedules on every port: jitters the interleaving of
    # submissions, firings, and the stop-world hammer without losing ops.
    plan = FaultPlan.random(
        seed, [p.name for p in outs + ins], kinds=("delay",)
    )
    wouts = [plan.wrap(p) for p in outs]
    wins = [plan.wrap(p) for p in ins]

    received = [0] * k
    checkpoints = {"ok": 0, "busy": 0}
    stop = threading.Event()

    def producer(i):
        for j in range(m):
            wouts[i].send((i, j))

    def consumer(i):
        try:
            while True:
                wins[i].recv(timeout=0.5)
                received[i] += 1
        except (ProtocolTimeoutError, PortClosedError, DeadlockError):
            return

    def hammer():
        while not stop.is_set():
            try:
                conn.checkpoint()
                checkpoints["ok"] += 1
            except CheckpointError:
                checkpoints["busy"] += 1
            time.sleep(0.001)

    hammer_t = threading.Thread(target=hammer)
    hammer_t.start()
    with TaskGroup() as g:
        for i in range(k):
            g.spawn(producer, i)
            g.spawn(consumer, i)
    conn.drain(timeout=JOIN_TIMEOUT)
    stop.set()
    hammer_t.join(JOIN_TIMEOUT)

    shed = conn.shed_count()
    submitted = k * m
    delivered = sum(received)
    assert delivered + shed == submitted, (
        f"seed {seed}: delivered {delivered} + shed {shed} != {submitted}"
    )
    # The registry saw the same world as the runtime's own books.
    reg_sub = sum(
        sample_value(
            registry, "repro_ops_submitted_total", (conn.name, v, "send")
        )
        for v in [f"l{i}x0" for i in range(k)]
    )
    reg_done = sum(
        sample_value(
            registry, "repro_ops_completed_total", (conn.name, f"l{i}x2", "recv")
        )
        for i in range(k)
    )
    assert reg_sub == submitted
    assert reg_done == delivered
    # The hammer really contended with live firing: it must have seen the
    # engine busy at least once, and quiescent at least once after drain.
    assert checkpoints["busy"] > 0 or checkpoints["ok"] > 0
    with pytest.raises(PortClosedError):
        outs[0].send("late")


@pytest.mark.parametrize("seed", [7])
def test_leave_quarantine_concurrent_with_firing(seed):
    """A supervised farm on a partitioned merger: one producer stalls (the
    watchdog quarantines it → leave() re-parametrizes mid-traffic), the
    rest keep firing region-parallel; every surviving value arrives."""
    n, m = 3, 200
    conn = library.connector(
        "EarlyAsyncMerger", n,
        default_timeout=OP_TIMEOUT,
        use_partitioning=True,
    )
    outs, (result_in,) = mkports(n, 1)
    conn.connect(outs, [result_in])
    assert len(conn.engine.regions) >= 2  # fifo halves decouple

    plan = FaultPlan(
        [FaultSpec("slow_task", outs[n - 1].name, at_op=2, delay=5.0)]
    )
    slow_out = plan.wrap(outs[n - 1])
    collected: list = []
    group = SupervisedTaskGroup(
        join_timeout=JOIN_TIMEOUT, on_departure="reparametrize"
    )

    def producer(i):
        def run():
            # Paced: keeps the engine firing throughout the stall window so
            # the watchdog sees a *stall* (peers active), not a deadlock.
            for j in range(m):
                outs[i].send((i, j))
                time.sleep(0.001)
        return run

    def slow_producer():
        for j in range(10):
            slow_out.send(("slow", j))

    def consumer():
        try:
            while True:
                collected.append(result_in.recv(timeout=2.0))
        except (PortClosedError, ProtocolTimeoutError, DeadlockError):
            return

    records = [
        group.spawn(producer(i), ports=[outs[i]], name=f"p{i}")
        for i in range(n - 1)
    ]
    slow = group.spawn(slow_producer, ports=[outs[n - 1]], name="slow")
    cons = group.spawn(consumer, ports=[result_in], name="consumer")

    dog = Watchdog(
        [conn], probe_interval=0.02, stall_after=0.25,
        group=group, escalate=True,
    )
    with dog:
        deadline = time.monotonic() + JOIN_TIMEOUT
        while not dog.reports and time.monotonic() < deadline:
            time.sleep(0.01)
    assert dog.reports and dog.reports[0].task == "slow"

    for r in records:
        r.join(JOIN_TIMEOUT)
    assert slow.departed and isinstance(slow.exception, StallError)
    conn.close()
    cons.join(JOIN_TIMEOUT)
    survivors = [v for v in collected if v[0] != "slow"]
    assert sorted(survivors) == sorted(
        (i, j) for i in range(n - 1) for j in range(m)
    ), f"seed {seed}: lost survivor values"
