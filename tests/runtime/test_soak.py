"""Time-boxed chaos soak: seeded fault storms against a supervised pipeline.

Each round builds a small supervised producer→Fifo1→consumer program with a
``shed_newest`` overload policy and runs it under a seeded fault plan mixing
``flood`` (overloading producer), ``slow_task`` (pathologically slow peer)
and ``crash_then_recover`` (healed by the restart policy) — the three
stressors this runtime claims to absorb.  A liveness watchdog rides along.

The soak invariants are liveness-shaped, not value-shaped:

* every round finishes inside its hard join bound (no hangs, ever);
* tasks end in success or a *typed* ``ReproError`` — nothing untyped leaks;
* every applied recoverable crash is healed by exactly one restart;
* no party goes silent for seconds while its peers keep firing (the
  watchdog stays quiet at a generous threshold).

Rounds are drawn from a fixed seed sequence, so any failure names the exact
seed to replay locally.  The wall-clock budget comes from ``SOAK_SECONDS``
(default: a few seconds, so the suite stays cheap outside the dedicated CI
soak job, which raises it to ~60s).
"""

import os
import time

import pytest

from repro.compiler import compile_source
from repro.runtime.faults import FaultPlan, InjectedFault, assert_recovered
from repro.runtime.overload import OverloadPolicy
from repro.runtime.ports import mkports
from repro.runtime.recovery import RestartPolicy
from repro.runtime.tasks import SupervisedTaskGroup
from repro.runtime.watchdog import Watchdog
from repro.util.errors import (
    DeadlockError,
    PortClosedError,
    ProtocolTimeoutError,
    ReproError,
)

pytestmark = [pytest.mark.fault_stress, pytest.mark.soak]

SOAK_SECONDS = float(os.environ.get("SOAK_SECONDS", "3"))
SEED_BASE = 7000  # fixed: round k always replays as seed SEED_BASE + k
OP_TIMEOUT = 5.0
JOIN_TIMEOUT = 15.0
CHAOS_KINDS = ("delay", "flood", "slow_task", "crash_then_recover")


def _one_round(seed: int) -> None:
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P",
        default_timeout=OP_TIMEOUT,
        overload=OverloadPolicy("shed_newest", max_pending=2),
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    plan = FaultPlan.random(
        seed,
        [outs[0].name, ins[0].name],
        n_faults=5,
        kinds=CHAOS_KINDS,
        max_op=10,
        max_delay=0.01,
    )
    out, inp = plan.wrap(outs[0]), plan.wrap(ins[0])
    n = 12
    sent: list = []
    got: list = []

    def producer():
        while len(sent) < n:
            out.send(len(sent))  # sheds instead of parking when flooded
            sent.append(len(sent))

    def consumer():
        # The round ends when the pipe goes quiet: a recv timeout, a closed
        # port, or — once the producer exits and deregisters — the deadlock
        # detector noticing the consumer is the last party standing.
        try:
            while True:
                got.append(inp.recv(timeout=0.5))
        except (ProtocolTimeoutError, PortClosedError, DeadlockError):
            return

    policy = RestartPolicy(
        max_retries=10,
        backoff_base=0.001,
        backoff_max=0.01,
        seed=seed,
        restart_on=(InjectedFault,),
    )
    group = SupervisedTaskGroup(restart_policy=policy)
    records = [
        group.spawn(producer, ports=[out], name="producer"),
        group.spawn(consumer, ports=[inp], name="consumer"),
    ]
    # Rides along at a threshold no healthy round comes near: a report here
    # means one party sat silent for seconds while the other kept firing.
    with Watchdog([conn], probe_interval=0.1, stall_after=3.0) as dog:
        for r in records:
            try:
                r.join(JOIN_TIMEOUT)
            except ReproError:
                pass  # typed failures are inspected below
            except TimeoutError:
                pass
    hung = [r.name for r in records if r.alive]
    conn.close()
    assert not hung, f"seed {seed}: tasks hung past {JOIN_TIMEOUT}s: {hung}"
    for r in records:
        assert r.exception is None or isinstance(r.exception, ReproError), (
            f"seed {seed}: task {r.name!r} died with untyped {r.exception!r}"
        )
    assert_recovered(plan, records)
    assert not dog.reports, f"seed {seed}: stalls flagged: {dog.reports}"
    # Values only ever move forward: delivered ⊆ sent, in order, no phantom
    # values — floods duplicate, sheds subtract, nothing is invented.
    assert set(got) <= set(range(n)), f"seed {seed}: phantom values {got}"


def test_chaos_soak_time_boxed():
    deadline = time.monotonic() + SOAK_SECONDS
    rounds = 0
    while True:
        _one_round(SEED_BASE + rounds)
        rounds += 1
        if time.monotonic() >= deadline:
            break
    assert rounds >= 1
