"""Supervision: crash propagation, party registration, precise deadlock
detection without ``expected_parties``."""

import time

import pytest

from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.ports import mkports
from repro.runtime.tasks import SupervisedTaskGroup
from repro.util.errors import DeadlockError, PeerFailedError


def pipe(**options):
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P", **options)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    return conn, outs[0], ins[0]


def test_supervised_success_path():
    conn, out, inp = pipe()
    got = []
    with SupervisedTaskGroup(join_timeout=30) as g:
        g.spawn(lambda: [out.send(i) for i in range(20)], ports=[out], name="producer")
        g.spawn(lambda: [got.append(inp.recv()) for _ in range(20)], ports=[inp], name="consumer")
    conn.close()
    assert got == list(range(20))


def test_crash_propagates_as_peer_failed_error():
    """A crashed producer must fail its blocked consumer fast, naming the
    dead task and carrying the original exception."""
    conn, out, inp = pipe()

    def producer():
        out.send(0)
        raise ValueError("producer exploded")

    def consumer():
        assert inp.recv() == 0
        inp.recv()  # producer is dead: this must not hang

    g = SupervisedTaskGroup(join_timeout=30)
    hp = g.spawn(producer, ports=[out], name="producer")
    hc = g.spawn(consumer, ports=[inp], name="consumer")
    hp.thread.join(10)
    hc.thread.join(10)
    assert not hp.alive and not hc.alive
    assert isinstance(hp.exception, ValueError)
    assert isinstance(hc.exception, PeerFailedError)
    assert hc.exception.task == "producer"
    assert isinstance(hc.exception.cause, ValueError)
    conn.close()


def test_crash_detected_within_bound():
    """Crash propagation must be fail-fast (sub-second), not a wall-clock
    timeout."""
    conn, out, inp = pipe()

    def producer():
        raise RuntimeError("dead on arrival")

    def consumer():
        inp.recv()

    g = SupervisedTaskGroup()
    t0 = time.monotonic()
    g.spawn(producer, ports=[out], name="producer")
    hc = g.spawn(consumer, ports=[inp], name="consumer")
    hc.thread.join(10)
    assert not hc.alive
    assert time.monotonic() - t0 < 5.0
    assert isinstance(hc.exception, PeerFailedError)
    conn.close()


def test_cross_wait_deadlock_detected_without_expected_parties():
    """The classic 2-task cross-wait: each task receives what only the other
    could send.  Registration-based detection must catch it with no
    ``expected_parties`` hint."""
    conn = compile_source(
        "P(a,c;b,d) = Fifo1(a;b) mult Fifo1(c;d)"
    ).instantiate_connector("P")
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)

    def t1():
        ins[1].recv()  # waits on d: only t2 sends c
        outs[0].send("x")

    def t2():
        ins[0].recv()  # waits on b: only t1 sends a
        outs[1].send("y")

    g = SupervisedTaskGroup()
    h1 = g.spawn(t1, ports=[outs[0], ins[1]], name="t1")
    h2 = g.spawn(t2, ports=[outs[1], ins[0]], name="t2")
    h1.thread.join(10)
    h2.thread.join(10)
    assert not h1.alive and not h2.alive
    assert isinstance(h1.exception, DeadlockError)
    assert isinstance(h2.exception, DeadlockError)
    conn.close()


def test_deadlock_detected_after_party_exits():
    """No false negative after a party exits: a consumer waiting for more
    data than the (normally exited) producer ever sent is detected."""
    conn, out, inp = pipe()

    def producer():
        for i in range(3):
            out.send(i)

    def consumer():
        return [inp.recv() for _ in range(5)]  # two more than exist

    g = SupervisedTaskGroup()
    hp = g.spawn(producer, ports=[out], name="producer")
    hc = g.spawn(consumer, ports=[inp], name="consumer")
    hp.thread.join(10)
    hc.thread.join(10)
    assert not hc.alive
    assert hp.exception is None
    assert isinstance(hc.exception, DeadlockError)
    conn.close()


def test_no_false_positive_while_producer_is_slow():
    """A slow-but-live registered party must not be declared deadlocked."""
    conn, out, inp = pipe()

    def producer():
        for i in range(3):
            time.sleep(0.12)  # longer than the detection grace
            out.send(i)

    def consumer():
        return [inp.recv() for _ in range(3)]

    with SupervisedTaskGroup(join_timeout=30) as g:
        g.spawn(producer, ports=[out], name="producer")
        hc = g.spawn(consumer, ports=[inp], name="consumer")
    conn.close()
    assert hc.result == [0, 1, 2]


def test_deadlock_diagnostic_names_parties_and_vertices():
    conn, out, inp = pipe()

    def consumer():
        inp.recv()

    g = SupervisedTaskGroup()
    hc = g.spawn(consumer, ports=[inp], name="lonely-consumer")
    hc.thread.join(10)
    assert isinstance(hc.exception, DeadlockError)
    msg = str(hc.exception)
    assert "lonely-consumer" in msg
    assert "pending recvs" in msg
    assert hc.exception.diagnostic
    conn.close()


def test_close_ports_on_exit():
    conn, out, inp = pipe()
    with SupervisedTaskGroup(join_timeout=30, close_ports_on_exit=True) as g:
        g.spawn(lambda: out.send(1), ports=[out], name="producer")
        g.spawn(lambda: inp.recv(), ports=[inp], name="consumer")
    assert out.closed and inp.closed
    conn.close()


def test_body_exception_releases_blocked_tasks():
    """If the orchestrating body raises, supervised tasks blocked on the
    protocol are failed fast and the body's exception propagates."""
    conn, out, inp = pipe()
    holder = {}
    t0 = time.monotonic()
    with pytest.raises(KeyError, match="orchestration bug"):
        with SupervisedTaskGroup() as g:
            holder["h"] = g.spawn(lambda: inp.recv(), ports=[inp], name="consumer")
            raise KeyError("orchestration bug")
    assert time.monotonic() - t0 < 5.0
    assert not holder["h"].alive
    assert isinstance(holder["h"].exception, PeerFailedError)
    conn.close()


def test_supervision_with_barrier_wrong_usage():
    """Barrier(2) with only one sender and one receiver: detected without
    expected_parties."""
    conn = library.connector("Barrier", 2)
    outs, ins = mkports(2, 2)
    conn.connect(outs, ins)

    g = SupervisedTaskGroup()
    h1 = g.spawn(lambda: outs[0].send("x"), ports=[outs[0]], name="send-only")
    h2 = g.spawn(lambda: ins[0].recv(), ports=[ins[0]], name="recv-only")
    h1.thread.join(10)
    h2.thread.join(10)
    assert not h1.alive and not h2.alive
    assert isinstance(h1.exception, DeadlockError)
    assert isinstance(h2.exception, DeadlockError)
    conn.close()
