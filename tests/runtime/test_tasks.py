"""Task helpers: spawning, joining, error propagation."""

import threading
import time

import pytest

from repro.runtime.tasks import TaskGroup, TaskHandle, join_all, spawn


def test_spawn_returns_result():
    assert spawn(lambda: 41 + 1).join(5) == 42


def test_spawn_propagates_exception():
    def boom():
        raise RuntimeError("inside task")

    h = spawn(boom)
    with pytest.raises(RuntimeError, match="inside task"):
        h.join(5)


def test_join_timeout():
    h = spawn(time.sleep, 5)
    with pytest.raises(TimeoutError):
        h.join(0.05)


def test_taskgroup_joins_all():
    with TaskGroup() as g:
        hs = [g.spawn(lambda i=i: i * i) for i in range(5)]
    assert [h.result for h in hs] == [0, 1, 4, 9, 16]


def test_taskgroup_raises_first_error_after_joining_all():
    finished = []

    def ok(i):
        finished.append(i)
        return i

    def bad():
        raise ValueError("nope")

    with pytest.raises(ValueError, match="nope"):
        with TaskGroup() as g:
            g.spawn(bad)
            g.spawn(ok, 1)
            g.spawn(ok, 2)
    assert sorted(finished) == [1, 2]  # all were still joined


def test_taskgroup_joins_on_exception_in_body():
    """If the with-body itself raises, the spawned threads are still joined
    (no thread abandoned mid-protocol) and the body's exception propagates
    unmasked."""
    holder = {}
    with pytest.raises(KeyError, match="body error"):
        with TaskGroup() as g:
            holder["h"] = g.spawn(lambda: time.sleep(0.05))
            raise KeyError("body error")
    assert not holder["h"].alive  # the thread was joined, not abandoned


def test_taskgroup_body_exception_records_task_failures():
    """A task failure discovered while unwinding a body exception must not
    replace the body's exception — it is recorded in ``suppressed``."""

    def bad():
        raise ValueError("task error")

    with pytest.raises(KeyError, match="body error"):
        with TaskGroup() as g:
            g.spawn(bad)
            time.sleep(0.05)
            raise KeyError("body error")
    assert len(g.suppressed) == 1
    assert isinstance(g.suppressed[0], ValueError)


def test_taskgroup_body_exception_join_is_bounded():
    """A stuck task must not stall unwinding forever: the exit join is
    bounded by join_timeout and the original exception still propagates."""
    ev = threading.Event()
    t0 = time.monotonic()
    try:
        with pytest.raises(KeyError):
            with TaskGroup(join_timeout=0.2) as g:
                g.spawn(ev.wait)  # would block ~forever
                raise KeyError("body error")
        assert time.monotonic() - t0 < 5.0
        assert len(g.suppressed) == 1
        assert isinstance(g.suppressed[0], TimeoutError)
    finally:
        ev.set()  # release the daemon thread


def test_join_all_helper():
    hs = [spawn(lambda i=i: i) for i in range(3)]
    assert join_all(hs, timeout=5) == [0, 1, 2]


def test_alive_flag():
    h = spawn(time.sleep, 0.2)
    assert h.alive
    h.join(5)
    assert not h.alive


def test_spawn_kwargs_and_name():
    def fn(a, b=0):
        return a + b

    h = spawn(fn, 1, b=2, name="adder")
    assert h.name == "adder"
    assert h.join(5) == 3
