"""Operation timeouts: bounded blocking, cancellation, no stale entries."""

import time

import pytest

from repro.compiler import compile_source
from repro.runtime.ports import mkports
from repro.runtime.tasks import spawn
from repro.util.errors import ProtocolTimeoutError, ReproError


def pipe(**options):
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector("P", **options)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    return conn, outs[0], ins[0]


def test_recv_timeout_on_empty_fifo():
    conn, out, inp = pipe()
    t0 = time.monotonic()
    with pytest.raises(ProtocolTimeoutError) as ei:
        inp.recv(timeout=0.15)
    elapsed = time.monotonic() - t0
    assert 0.1 < elapsed < 2.0
    assert "timed out" in str(ei.value)
    conn.close()


def test_send_timeout_on_full_fifo():
    conn, out, inp = pipe()
    out.send(1)  # fifo1 now full
    with pytest.raises(ProtocolTimeoutError):
        out.send(2, timeout=0.15)
    conn.close()


def test_timeout_error_is_both_timeout_and_repro_error():
    conn, out, inp = pipe()
    with pytest.raises(TimeoutError):
        inp.recv(timeout=0.05)
    with pytest.raises(ReproError):
        inp.recv(timeout=0.05)
    conn.close()


def test_timed_out_recv_leaves_no_stale_queue_entry():
    """After a recv times out, a later send must NOT be consumed by the
    withdrawn operation — the value stays available to the next receiver."""
    conn, out, inp = pipe()
    with pytest.raises(ProtocolTimeoutError):
        inp.recv(timeout=0.1)
    out.send("kept")
    ok, v = inp.try_recv()
    assert ok and v == "kept"
    conn.close()


def test_timed_out_send_leaves_no_stale_queue_entry():
    """After a send times out, a later recv must NOT observe its value."""
    conn, out, inp = pipe()
    out.send("first")  # fills the fifo
    with pytest.raises(ProtocolTimeoutError):
        out.send("stale", timeout=0.1)
    assert inp.recv(timeout=1.0) == "first"
    # the timed-out offer is gone: the fifo is now empty
    ok, v = inp.try_recv()
    assert not ok
    conn.close()


def test_connector_default_timeout():
    conn, out, inp = pipe(default_timeout=0.1)
    with pytest.raises(ProtocolTimeoutError):
        inp.recv()
    conn.close()


def test_per_call_timeout_overrides_default():
    conn, out, inp = pipe(default_timeout=30.0)
    t0 = time.monotonic()
    with pytest.raises(ProtocolTimeoutError):
        inp.recv(timeout=0.1)
    assert time.monotonic() - t0 < 5.0
    conn.close()


def test_completion_before_timeout_wins():
    conn, out, inp = pipe()

    def late_producer():
        time.sleep(0.05)
        out.send(42)

    h = spawn(late_producer)
    assert inp.recv(timeout=5.0) == 42
    h.join(5)
    conn.close()


def test_timeout_attributes():
    conn, out, inp = pipe()
    with pytest.raises(ProtocolTimeoutError) as ei:
        inp.recv(timeout=0.05)
    assert ei.value.timeout == 0.05
    assert ei.value.vertex  # names the boundary vertex it waited on
    conn.close()
