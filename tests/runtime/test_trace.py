"""Trace recording: ordered, observable accounts of protocol runs."""

from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.ports import mkports
from repro.runtime.trace import TraceRecorder

from tests.conftest import pump


def traced_connector(source_or_name, tracer, n=None):
    if n is None:
        return compile_source(source_or_name).instantiate_connector(
            tracer=tracer
        )
    return library.connector(source_or_name, n, tracer=tracer)


def test_records_every_step():
    tracer = TraceRecorder()
    conn = traced_connector("P(a;b) = Fifo1(a;b)", tracer)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for i in range(3):
        outs[0].send(i)
        assert ins[0].recv() == i
    conn.close()
    assert len(tracer) == conn.steps == 6
    # sequence numbers are strictly increasing
    seqs = [e.seq for e in tracer.events]
    assert seqs == sorted(seqs)


def test_deliveries_recorded():
    tracer = TraceRecorder()
    conn = traced_connector("P(a;b) = Fifo1(a;b)", tracer)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for v in ("x", "y"):
        outs[0].send(v)
        ins[0].recv()
    conn.close()
    assert tracer.delivered_values(conn.head_vertices[0]) == ["x", "y"]


def test_assert_orders_catches_ex1_property():
    """The running example's 'A before B', asserted on an actual trace."""
    tracer = TraceRecorder()
    conn = traced_connector("SequencedMerger", tracer, n=2)
    pump(conn, {0: ["a0", "a1"], 1: ["b0", "b1"]}, {0: 2, 1: 2})
    t1, t2 = conn.tail_vertices
    tracer.assert_orders([(t1, t2)])  # every round: producer 1 first


def test_assert_orders_detects_violation():
    from repro.runtime.tasks import spawn

    tracer = TraceRecorder()
    conn = traced_connector("Merger", tracer, n=2)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    # force producer 2 first (the merger is synchronous: sender and
    # receiver must overlap, so the sends run on their own threads)
    h = spawn(outs[1].send, "b")
    assert ins[0].recv() == "b"
    h.join(5)
    h = spawn(outs[0].send, "a")
    assert ins[0].recv() == "a"
    h.join(5)
    conn.close()
    t1, t2 = conn.tail_vertices
    import pytest

    with pytest.raises(AssertionError, match="ordering violated"):
        tracer.assert_orders([(t1, t2)])


def test_bounded_capacity_drops_oldest():
    tracer = TraceRecorder(capacity=4)
    conn = traced_connector("P(a;b) = Fifo1(a;b)", tracer)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for i in range(5):
        outs[0].send(i)
        ins[0].recv()
    conn.close()
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert tracer.events[0].seq == 6  # oldest were dropped


def test_firings_of_filters_by_vertex():
    tracer = TraceRecorder()
    conn = traced_connector("Replicator", tracer, n=2)
    pump(conn, {0: [1]}, {0: 1, 1: 1})
    assert len(tracer.firings_of(conn.tail_vertices[0])) == 1
    assert len(tracer.firings_of("nonexistent")) == 0


def test_rseq_is_per_region_monotonic():
    """``rseq`` restarts at 0 per region and counts contiguously within
    it, independent of the global ``seq`` interleaving (the ordering
    contract the fuzzing oracle's normalization builds on)."""
    tracer = TraceRecorder()
    for region in (0, 1, 0, 2, 1, 0):
        tracer.record(region, frozenset({"v"}), (), (), ())
    by_region = {}
    for ev in tracer.events:
        by_region.setdefault(ev.region, []).append(ev.rseq)
    assert by_region == {0: [0, 1, 2], 1: [0, 1], 2: [0]}


def test_rseq_contiguous_under_regions_engine():
    """Same contract on a real partitioned run: each region's events carry
    rseq 0..k-1 in recording order."""
    tracer = TraceRecorder()
    conn = library.connector(
        "FifoChain", 3, tracer=tracer,
        concurrency="regions", use_partitioning=True,
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    for i in range(3):
        outs[0].send(i)
    for i in range(3):
        assert ins[0].recv() == i
    conn.close()
    assert tracer.events
    by_region = {}
    for ev in tracer.events:
        by_region.setdefault(ev.region, []).append(ev.rseq)
    for region, rseqs in by_region.items():
        assert rseqs == list(range(len(rseqs))), (region, rseqs)


def test_event_str():
    tracer = TraceRecorder()
    conn = traced_connector("P(a;b) = Fifo1(a;b)", tracer)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send("v")
    ins[0].recv()
    conn.close()
    text = str(tracer.events[-1])
    assert "region0" in text and "{" in text
