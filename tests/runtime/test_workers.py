"""Behavioural coverage for the multiprocess ``workers`` engine backend.

Every contract the thread backends honour must survive the move to
per-region worker processes (:mod:`repro.runtime.workers`): blocking and
non-blocking port operations, posted (asynchronous) operations, timeout
withdrawal, deadlock detection, overload shedding with dead letters,
checkpoint/restore, drain, and party departure.  On top of that the
backend adds a failure mode the thread tiers cannot have — a worker
process dying — which must surface as :class:`PeerFailedError` on the
ops it strands, both via direct ``kill_worker`` and via the seeded
``worker_kill`` fault kind.
"""

import time

import pytest

from repro.compiler import compile_source
from repro.connectors import library
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.overload import OverloadPolicy
from repro.runtime.ports import mkports
from repro.runtime.tasks import TaskGroup, spawn
from repro.util.errors import (
    DeadlockError,
    PeerFailedError,
    PortClosedError,
    ProtocolTimeoutError,
)

OP_TIMEOUT = 15.0
JOIN_TIMEOUT = 60.0
pytestmark = pytest.mark.fault_stress


def workers_connector(name, n, **options):
    options.setdefault("default_timeout", OP_TIMEOUT)
    options.setdefault("workers", 2)
    options.setdefault("use_partitioning", True)
    return library.connector(name, n, concurrency="workers", **options)


def fifo1(**options):
    options.setdefault("default_timeout", OP_TIMEOUT)
    options.setdefault("concurrency", "workers")
    conn = compile_source("P(a;b) = Fifo1(a;b)").instantiate_connector(
        "P", **options
    )
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    return conn, outs[0], ins[0]


def test_replicator_roundtrip_and_close():
    conn = workers_connector("Replicator", 2)
    outs, ins = mkports(1, 2)
    conn.connect(outs, ins)
    with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
        g.spawn(outs[0].send, "x", name="send")
        r0 = g.spawn(ins[0].recv, name="r0")
        r1 = g.spawn(ins[1].recv, name="r1")
    assert r0.result == "x" and r1.result == "x"
    assert conn.engine.steps >= 1
    conn.close()
    with pytest.raises(PortClosedError):
        outs[0].send("y")


def test_pipeline_crosses_worker_boundary():
    """An EarlyAsyncRouter's regions are split round-robin across two
    workers, so values flow through the touched/kick relay between
    processes — not just within one inner engine."""
    conn = workers_connector("EarlyAsyncRouter", 3)
    outs, ins = mkports(1, 3)
    conn.connect(outs, ins)
    table = conn.engine.routing_table()
    assert len(set(table.values())) > 1, table
    assert len(conn.engine.worker_pids()) == 2
    def send_all():
        for i in range(10):
            outs[0].send(i)
        return True

    h = spawn(send_all)
    got = []
    deadline = time.monotonic() + OP_TIMEOUT
    while len(got) < 10:
        assert time.monotonic() < deadline, "router starved"
        for p in ins:
            ok, v = p.try_recv()
            if ok:
                got.append(v)
    assert h.join(JOIN_TIMEOUT) is True
    assert sorted(got) == list(range(10))
    conn.close()


def test_posted_ops_complete_and_quiesce():
    """post_* handles resolve exactly as on the thread backends, and the
    post itself does not return until relayed kick cascades have
    quiesced — the determinism contract the fuzz oracle relies on."""
    conn, out, inp = fifo1()
    h_send = conn.engine.post_send(out._vertex, "v")
    assert h_send.done and h_send.error is None
    h_recv = conn.engine.post_recv(inp._vertex)
    assert h_recv.done and h_recv.value == "v"
    conn.close()


def test_try_ops_and_capacity():
    conn, out, inp = fifo1()
    ok, _ = inp.try_recv()
    assert not ok  # empty
    assert out.try_send(1)
    assert not out.try_send(2)  # fifo1 full: offer withdrawn in-worker
    ok, v = inp.try_recv()
    assert ok and v == 1
    conn.close()


def test_timeout_withdraws_blocked_op():
    conn, out, inp = fifo1()
    t0 = time.monotonic()
    with pytest.raises(ProtocolTimeoutError):
        inp.recv(timeout=0.3)
    assert time.monotonic() - t0 < OP_TIMEOUT / 2
    # the withdrawn op left no residue: a real exchange still works
    out.send("after")
    assert inp.recv() == "after"
    conn.close()


def test_deadlock_detection_two_receivers():
    conn, out, inp = fifo1(expected_parties=2)

    def recv_expect_deadlock():
        with pytest.raises(DeadlockError):
            inp.recv()
        return True

    h1 = spawn(recv_expect_deadlock)
    time.sleep(0.02)
    h2 = spawn(recv_expect_deadlock)
    assert h1.join(30) and h2.join(30)
    conn.close()


def test_overload_shed_newest_counts_and_dead_letters():
    """Admission adjudication happens inside the owning worker (the inner
    engine runs with overload=None); the shed must still be visible in the
    parent's counters and dead-letter view."""
    conn, out, inp = fifo1(
        overload=OverloadPolicy(
            "shed_newest", max_pending=0, dead_letter_capacity=4
        )
    )
    out.send(1)  # completes immediately into the fifo
    out.send(2)  # fifo full -> shed, reported as success
    assert conn.engine.shed_count() == 1
    letters = conn.engine.dead_letters()
    assert [dl.value for dl in letters] == [2]
    assert inp.recv() == 1
    conn.close()


def test_checkpoint_restore_roundtrip():
    conn, out, inp = fifo1()
    out.send("buffered")
    cp = conn.checkpoint()
    assert cp.steps == conn.engine.steps
    conn.close()

    conn2, out2, inp2 = fifo1()
    conn2.restore(cp)
    assert inp2.recv() == "buffered"
    ok, _ = inp2.try_recv()
    assert not ok  # exactly once
    conn2.close()


def test_drain_flushes_buffered_values_then_closes():
    conn = workers_connector("FifoChain", 2, workers=1)
    outs, ins = mkports(1, 1)
    conn.connect(outs, ins)
    outs[0].send("x")  # buffered in the chain, no receiver yet
    h = spawn(ins[0].recv)
    conn.drain(timeout=30)  # drained only once the receiver flushes "x"
    assert h.join(JOIN_TIMEOUT) == "x"
    with pytest.raises(PortClosedError):
        outs[0].send("y")


def test_leave_reconfigures_running_workers():
    """Party departure re-migrates protocol state through the same
    checkpoint hand-off the workers started with."""
    conn = workers_connector("Merger", 2)
    outs, ins = mkports(2, 1)
    conn.connect(outs, ins)
    with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
        g.spawn(outs[0].send, "a", name="send")
        r = g.spawn(ins[0].recv, name="recv")
    assert r.result == "a"
    report = conn.leave(outs[0], task="A")
    assert report.removed_vertices
    assert outs[0].closed
    with TaskGroup(join_timeout=JOIN_TIMEOUT) as g:
        g.spawn(outs[1].send, "b", name="send")
        r = g.spawn(ins[0].recv, name="recv")
    assert r.result == "b"
    conn.close()


def test_killed_worker_fails_blocked_ops_with_peer_error():
    conn, out, inp = fifo1(workers=1)

    def recv_expect_peer_failure():
        with pytest.raises(PeerFailedError):
            inp.recv()
        return True

    h = spawn(recv_expect_peer_failure)
    time.sleep(0.1)
    assert conn.engine.kill_worker(0)
    assert h.join(30) is True
    conn.close()


def test_worker_kill_fault_is_deterministic():
    """The seeded ``worker_kill`` fault kind SIGKILLs the worker owning the
    port's vertex immediately before the N-th operation — the same plan
    must strand the same op on every run."""

    def run_once():
        conn = workers_connector("FifoChain", 2, workers=1)
        outs, ins = mkports(1, 1)
        conn.connect(outs, ins)
        out, inp = outs[0], ins[0]
        plan = FaultPlan([FaultSpec("worker_kill", inp.name, at_op=2)])
        finp = plan.wrap(inp)
        out.send("a")
        out.send("b")  # both buffered: the chain holds two values
        delivered = []
        failed_at = None
        for i in range(2):
            try:
                delivered.append(finp.recv())
            except PeerFailedError:
                failed_at = i
                break
        conn.close()
        return delivered, failed_at

    first = run_once()
    second = run_once()
    assert first == second
    assert first[0] == ["a"] and first[1] == 1


def test_worker_kill_fault_noop_on_thread_backend():
    conn, out, inp = fifo1(concurrency="regions")
    plan = FaultPlan([FaultSpec("worker_kill", inp.name, at_op=1)])
    finp = plan.wrap(inp)
    out.send("x")
    assert finp.recv() == "x"  # no worker processes: documented no-op
    conn.close()
