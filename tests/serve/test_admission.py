"""Admission control: tenant quotas, closed tenancy, and the
tenant → overload-policy mapping."""

import pytest

from repro.runtime.errors import ReproRuntimeError
from repro.runtime.overload import OverloadPolicy
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TenantSpec,
)


def test_quota_admits_up_to_max_then_refuses():
    ctrl = AdmissionController(tenants=(TenantSpec("acme", max_sessions=2),))
    assert ctrl.admit("acme", 0).name == "acme"
    assert ctrl.admit("acme", 1).name == "acme"
    with pytest.raises(AdmissionError, match="quota exhausted"):
        ctrl.admit("acme", 2)


def test_unknown_tenant_refused_under_closed_tenancy():
    ctrl = AdmissionController(tenants=(TenantSpec("acme"),))
    with pytest.raises(AdmissionError, match="unknown tenant") as ei:
        ctrl.spec("ghost")
    assert ei.value.tenant == "ghost"
    # an AdmissionError is a runtime error like every other typed failure
    assert isinstance(ei.value, ReproRuntimeError)


def test_default_spec_serves_unknown_tenants():
    fallback = TenantSpec("anyone", max_sessions=1)
    ctrl = AdmissionController(default=fallback)
    assert ctrl.spec("whoever") is fallback
    with pytest.raises(AdmissionError):
        ctrl.admit("whoever", 1)


def test_tenant_policy_mapping_reaches_sessions():
    """The spec carries the per-tenant OverloadPolicy (max_pending budget,
    dead-letter capacity) that open_session installs on the intake."""
    strict = OverloadPolicy("fail_fast", max_pending=1,
                           dead_letter_capacity=8)
    lax = OverloadPolicy("shed_newest", max_pending=64,
                         dead_letter_capacity=1024)
    ctrl = AdmissionController(tenants=(
        TenantSpec("strict", overload=strict),
        TenantSpec("lax", overload=lax),
    ))
    assert ctrl.spec("strict").overload is strict
    assert ctrl.spec("lax").overload is lax
    assert ctrl.spec("lax").overload.max_pending == 64


def test_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("t", max_sessions=0)
    with pytest.raises(ValueError):
        TenantSpec("t", workers=0)
