"""Durable FarmSession + CoordinatorService: crash-consistent cold starts.

These are the in-process halves of the kill-9 story (docs/DURABILITY.md):
a ``quarantine()`` stands in for the crash — no drain, no final snapshot,
the journal left exactly as the write-ahead hooks put it — and a second
service incarnation over the same ``state_dir`` must recover the session
with its exactly-once delivery book intact.  The subprocess harness with
real ``SIGKILL`` is ``python -m repro serve --crash-test`` (exercised by
the smoke test at the bottom and by CI's crash-recovery-smoke job).
"""

import json
import time

import pytest

from repro.runtime.errors import RuntimeProtocolError
from repro.runtime.overload import OverloadPolicy
from repro.serve.daemon import handle
from repro.serve.service import CoordinatorService

BLOCK = OverloadPolicy("block")
WAIT = 15.0


def wait_delivered(session, n, timeout=WAIT):
    deadline = time.monotonic() + timeout
    while len(session.delivered) < n:
        assert time.monotonic() < deadline, (len(session.delivered), n)
        time.sleep(0.01)


def test_durable_requires_durability():
    with CoordinatorService() as svc:
        s = svc.open_session("a", policy=BLOCK)
        with pytest.raises(RuntimeProtocolError):
            s.durable_checkpoint()
        assert svc.recover_sessions() == []


def test_exactly_once_book_across_three_incarnations(tmp_path):
    svc1 = CoordinatorService(state_dir=tmp_path)
    s = svc1.open_session("a", policy=BLOCK)
    for i in range(10):
        assert s.submit(f"v{i}") == "ok"
    wait_delivered(s, 10)
    svc1.durable_checkpoint("a")
    for i in range(10, 15):
        assert s.submit(f"v{i}") == "ok"
    wait_delivered(s, 15)
    book1 = list(s.delivered)
    # simulate kill -9: no drain, no final snapshot — journal as-is on disk
    svc1.quarantine("a")
    svc1.close()

    svc2 = CoordinatorService(state_dir=tmp_path)
    assert svc2.recover_sessions() == ["a"]
    s2 = svc2.session("a")
    assert s2.delivered == book1
    rec = s2.durability.last_recovery
    assert rec.outcome == "restored"
    # the 5 post-snapshot deliveries came back from the journal, not disk
    assert rec.generation >= 1 and len(rec.delivered) == 15
    for i in range(15, 20):
        assert s2.submit(f"v{i}") == "ok"
    wait_delivered(s2, 20)
    book2 = list(s2.delivered)
    svc2.close()

    svc3 = CoordinatorService(state_dir=tmp_path)
    assert svc3.recover_sessions() == ["a"]
    s3 = svc3.session("a")
    assert s3.delivered == book2
    assert sorted(s3.delivered) == sorted(f"v{i}" for i in range(20))
    svc3.close()


def test_suppress_path_no_duplicate_delivery(tmp_path):
    """Crash after a buffered value's delivery was journaled: the restored
    engine re-emits it, the suppress set swallows exactly one copy."""
    svc1 = CoordinatorService(state_dir=tmp_path)
    s = svc1.open_session("a", policy=BLOCK)
    s._gate.clear()            # park the workers
    time.sleep(0.1)
    assert s.submit("b0", timeout=WAIT) == "ok"   # buffered in the engine
    cp = s.durable_checkpoint()
    assert any(cp.buffers.values()), cp.buffers
    wait_delivered(s, 1)       # durable_checkpoint resumed the workers
    svc1.quarantine("a")       # crash AFTER the delivery was journaled
    svc1.close()

    svc2 = CoordinatorService(state_dir=tmp_path)
    svc2.recover_sessions()
    s2 = svc2.session("a")
    rec = s2.durability.last_recovery
    assert sum(rec.suppress.values()) == 1
    assert rec.resubmit == []
    time.sleep(1.0)            # restored engine re-emits the buffered value
    assert s2.delivered == ["b0"], s2.delivered
    svc2.close()


def test_resubmit_path_no_lost_admission(tmp_path):
    """Crash with an acknowledged submit that never reached a snapshot or a
    delivery record: recovery re-injects it from the journal intent."""
    svc1 = CoordinatorService(state_dir=tmp_path)
    s = svc1.open_session("a", policy=BLOCK)
    s._gate.clear()
    time.sleep(0.1)
    assert s.submit("r0", timeout=WAIT) == "ok"
    svc1.quarantine("a")       # the value exists only in the journal
    svc1.close()

    svc2 = CoordinatorService(state_dir=tmp_path)
    svc2.recover_sessions()
    s2 = svc2.session("a")
    rec = s2.durability.last_recovery
    assert rec.resubmit == ["r0"]
    assert sum(rec.suppress.values()) == 0
    wait_delivered(s2, 1)
    time.sleep(0.3)            # would catch a duplicate re-injection
    assert s2.delivered == ["r0"], s2.delivered
    svc2.close()


def test_recover_sessions_rebuilds_configuration(tmp_path):
    svc1 = CoordinatorService(state_dir=tmp_path)
    svc1.open_session("cfg", tenant="acme", workers=3, service_time=0.001,
                      policy=OverloadPolicy("block", max_pending=9))
    svc1.close()

    svc2 = CoordinatorService(state_dir=tmp_path)
    assert svc2.recover_sessions() == ["cfg"]
    s = svc2.session("cfg")
    assert s.tenant == "acme"
    assert s.workers == 3
    assert s.policy.kind == "block" and s.policy.max_pending == 9
    # idempotent: a second call skips the already-open name
    assert svc2.recover_sessions() == []
    svc2.close()


def test_recovery_metric_counts_cold_starts(tmp_path):
    svc1 = CoordinatorService(state_dir=tmp_path)
    svc1.open_session("m", policy=BLOCK)
    svc1.close()

    svc2 = CoordinatorService(state_dir=tmp_path)
    svc2.recover_sessions()
    reg = svc2.session("m").registry
    fam = reg.counter("repro_durable_recoveries_total")
    assert dict(fam.samples())[("m", "restored")] == 1
    svc2.close()


def test_auto_checkpoint_commits_in_the_background(tmp_path):
    svc = CoordinatorService(state_dir=tmp_path, auto_checkpoint=0.05)
    s = svc.open_session("auto", policy=BLOCK)
    assert s.submit("x") == "ok"
    wait_delivered(s, 1)
    store = s.durability.store
    deadline = time.monotonic() + WAIT
    # open() committed generation 1; the loop must add more on its own
    while max(store.generations()) < 2:
        assert time.monotonic() < deadline, store.generations()
        time.sleep(0.02)
    svc.close()


# -- the JSON-lines daemon dispatch ----------------------------------------


def test_daemon_handle_roundtrip(tmp_path):
    svc = CoordinatorService(state_dir=tmp_path)
    try:
        resp, alive = handle(svc, {"op": "open", "name": "d",
                                   "policy": {"kind": "block"}})
        assert resp["ok"] and alive
        resp, _ = handle(svc, {"op": "submit", "name": "d", "value": "v0"})
        assert resp["ok"] and resp["result"] == "ok"
        resp, _ = handle(svc, {"op": "checkpoint", "name": "d"})
        assert resp["ok"]
        deadline = time.monotonic() + WAIT
        while True:
            resp, _ = handle(svc, {"op": "delivered", "name": "d"})
            if resp["values"] == ["v0"]:
                break
            assert time.monotonic() < deadline, resp
            time.sleep(0.01)
        resp, _ = handle(svc, {"op": "status"})
        assert resp["ok"] and "d" in resp["sessions"]
        resp, _ = handle(svc, {"op": "nonsense"})
        assert not resp["ok"] and resp["error"]
        resp, alive = handle(svc, {"op": "shutdown"})
        assert resp["ok"] and not alive
    finally:
        svc.close()
    assert json.dumps(resp)  # every response is JSON-serializable


# -- the real thing: SIGKILL in a subprocess --------------------------------


@pytest.mark.fault_stress
def test_crash_harness_smoke(tmp_path):
    from repro.serve.crashtest import run_crash_test

    report = run_crash_test(str(tmp_path / "state"), kills=3, seed=7,
                            budget=60.0, sessions=2, workers=2)
    assert report["ok"], report["violations"]
    assert report["violations"] == []
    assert report["kills"] == 3
    assert report["acked_total"] > 0
    for audit in report["session_reports"].values():
        assert audit["delivered"] >= audit["acked"] - audit["unacked"]
