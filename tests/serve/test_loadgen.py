"""The chaos load harness: a small end-to-end run with all four chaos
kinds, plus the BENCH_serve record/check gate on a temp file."""

import json

import pytest

from repro.serve.loadgen import (
    DEFAULT_CHAOS,
    LoadSpec,
    check,
    record,
    run_load,
)

SMALL = LoadSpec(sessions=4, tenants=2, duration=0.6, overload=2.0,
                 producers=5, max_pending=3, seed=13)


@pytest.mark.fault_stress
def test_small_run_passes_every_audit():
    report = run_load(SMALL)
    assert report.failures == [], report.failures
    assert report.ok
    # all four chaos kinds were assigned and actually fired
    assert {row["chaos"] for row in report.sessions.values()} == set(
        DEFAULT_CHAOS
    )
    for name, row in report.sessions.items():
        assert row["faults_applied"], f"{name}: plan never fired"
    # the sustained-overload books: work was shed, and the per-session
    # conservation law held exactly (no entries in report.violations)
    assert report.totals["dead_letters"] > 0
    assert report.violations == []
    assert report.exactly_once_failures == []
    assert report.supervisor_failures == []
    # the rolling restart round-tripped mid-load
    assert report.restarts_done == 1
    assert report.sessions["s0"]["restarts"] == 1
    # admission probe past the quota was refused
    assert report.admission["rejection_probed"]


@pytest.mark.fault_stress
def test_record_then_check_gate(tmp_path):
    path = tmp_path / "BENCH_serve.json"
    report = record(str(path), SMALL)
    assert report.ok
    doc = json.loads(path.read_text())
    assert doc["spec"]["sessions"] == 4
    assert doc["report"]["ok"] is True
    assert doc["report"]["p99"] >= 0.0
    ok, messages, fresh = check(str(path))
    assert ok, messages
    assert fresh.ok


@pytest.mark.fault_stress
def test_check_trips_on_impossible_baseline(tmp_path):
    """A baseline whose spec demands an impossible p99 must fail the
    gate — the SLO is a gate, not a log line."""
    path = tmp_path / "BENCH_serve.json"
    record(str(path), SMALL)
    doc = json.loads(path.read_text())
    doc["spec"]["p99_budget"] = 1e-9  # nothing real is this fast
    doc["report"]["p99"] = 1e-12
    path.write_text(json.dumps(doc))
    ok, messages, fresh = check(str(path))
    assert not ok
    assert any("p99" in m for m in messages)
    assert not fresh.ok
