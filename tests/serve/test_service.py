"""CoordinatorService: sharding keyed off the routing table, the serve
metric families, admission accounting, restart bookkeeping, and the
progress-based stall detector."""

import time

import pytest

from repro.runtime.errors import RuntimeProtocolError, StallError
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.overload import OverloadPolicy
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TenantSpec,
)
from repro.serve.service import CoordinatorService
from repro.serve.session import SessionState

POLICY = OverloadPolicy("shed_newest", max_pending=16,
                        dead_letter_capacity=10_000)


def _controller(max_sessions=8):
    return AdmissionController(
        default=TenantSpec("default", max_sessions=max_sessions,
                           overload=POLICY)
    )


def _samples(registry, family):
    for fam in registry.collect():
        if fam.name == family:
            return dict(fam.samples())
    return {}


def test_hosts_many_sessions_and_routes_submits():
    with CoordinatorService(_controller()) as svc:
        for i in range(6):
            svc.open_session(f"s{i}", service_time=0.0)
        for i in range(6):
            for j in range(5):
                assert svc.submit(f"s{i}", f"s{i}:{j}", timeout=5.0) == "ok"
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if all(len(svc.session(f"s{i}").delivered) == 5
                   for i in range(6)):
                break
            time.sleep(0.01)
        status = svc.status()
    assert len(status) == 6
    assert all(row["delivered"] == 5 for row in status.values())


def test_shard_is_keyed_off_the_routing_table():
    """The shard digest is a function of (session name, vertex->region
    assignment): recomputing it for a live session is stable, and sessions
    spread across more than one shard."""
    with CoordinatorService(_controller(), shards=4) as svc:
        for i in range(8):
            svc.open_session(f"s{i}")
        shards = {name: row["shard"] for name, row in svc.status().items()}
        for name, session in svc._sessions.items():
            assert svc._shard_for(session).index == shards[name]
            # the signature really reads the live engine routing table
            engine = session.connector.engine
            sig = svc._route_signature(session)
            assert len(sig) == len(engine._route)
    assert len(set(shards.values())) > 1


def test_admission_metrics_and_duplicate_names():
    ctrl = AdmissionController(tenants=(
        TenantSpec("acme", max_sessions=1, overload=POLICY),
    ))
    svc = CoordinatorService(ctrl)
    try:
        svc.open_session("a", tenant="acme")
        with pytest.raises(AdmissionError):
            svc.open_session("b", tenant="acme")  # quota
        with pytest.raises(AdmissionError):
            svc.open_session("c", tenant="ghost")  # closed tenancy
        with pytest.raises(RuntimeProtocolError):
            svc.open_session("a", tenant="acme")  # duplicate name
        admissions = _samples(svc.metrics, "repro_serve_admissions_total")
        assert admissions[("acme", "admitted")] == 1.0
        assert admissions[("acme", "rejected")] == 1.0
        assert admissions[("ghost", "rejected")] == 1.0
    finally:
        svc.close()


def test_closed_sessions_free_tenant_quota():
    ctrl = AdmissionController(tenants=(
        TenantSpec("acme", max_sessions=1, overload=POLICY),
    ))
    with CoordinatorService(ctrl) as svc:
        svc.open_session("a", tenant="acme")
        svc.close_session("a")
        svc.open_session("b", tenant="acme")  # quota freed by the close


def test_sessions_gauge_and_restart_counter():
    registry = MetricsRegistry()
    svc = CoordinatorService(_controller(), registry)
    try:
        svc.open_session("a", service_time=0.0)
        svc.open_session("b", service_time=0.0)
        assert _samples(registry, "repro_serve_sessions") == {
            ("default", "running"): 2.0
        }
        svc.rolling_restart("a")
        svc.rolling_restart("a")
        assert _samples(registry, "repro_serve_restarts_total") == {
            ("a",): 2.0
        }
        assert svc.session("a").restarts == 2
        svc.close_session("b")
        gauge = _samples(registry, "repro_serve_sessions")
        assert gauge[("default", "running")] == 1.0
        assert gauge[("default", "closed")] == 1.0
    finally:
        svc.close()


def test_quarantine_via_service():
    with CoordinatorService(_controller()) as svc:
        svc.open_session("sick")
        cause = RuntimeError("wedged")
        svc.quarantine("sick", cause)
        session = svc.session("sick")
        assert session.state is SessionState.QUARANTINED
        assert session.quarantine_cause is cause
        assert svc.status()["sick"]["state"] == "quarantined"


def test_unknown_session_is_typed():
    with CoordinatorService(_controller()) as svc:
        with pytest.raises(RuntimeProtocolError, match="unknown session"):
            svc.submit("ghost", 1)


@pytest.mark.fault_stress
def test_stall_detector_quarantines_wedged_session():
    """A session whose workers stop consuming while submits keep landing
    makes no progress with a positive backlog -> the maintenance pool
    quarantines it with a StallError; healthy sessions are untouched."""
    svc = CoordinatorService(_controller(), stall_after=0.2,
                             probe_interval=0.05)
    svc.start()
    try:
        svc.open_session("healthy", service_time=0.0)
        wedged = svc.open_session("wedged", service_time=0.0)
        # wedge the farm: park the workers for good (bypassing the
        # lifecycle, as a real wedge would)
        wedged._gate.clear()
        time.sleep(0.1)
        from repro.serve.session import SessionStateError

        for j in range(4):
            try:
                # a wedged farm may be quarantined mid-loop (that is the
                # point); later submits then see the typed refusal
                svc.submit("wedged", f"w{j}", timeout=0.3)
            except SessionStateError:
                pass
            svc.submit("healthy", f"h{j}", timeout=2.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if wedged.state is SessionState.QUARANTINED:
                break
            time.sleep(0.05)
        assert wedged.state is SessionState.QUARANTINED
        assert isinstance(wedged.quarantine_cause, StallError)
        assert svc.session("healthy").state is SessionState.RUNNING
    finally:
        svc.close()
