"""Session lifecycle: state-machine legality, quiescent rolling restarts
(exactly-once across generations, including shrink), and teardown."""

import threading
import time

import pytest

from repro.connectors import library
from repro.fuzz.oracle import conservation_violations
from repro.runtime.errors import RuntimeProtocolError
from repro.runtime.overload import OverloadPolicy
from repro.runtime.ports import Inport, Outport
from repro.serve.session import (
    FarmSession,
    Session,
    SessionState,
    SessionStateError,
)

POLICY = OverloadPolicy("shed_newest", max_pending=16,
                        dead_letter_capacity=10_000)


def _fifo_factory():
    conn = library.connector("FifoChain", 2)
    conn.connect([Outport("x0")], [Inport("x2")])
    return conn


# -- the generic state machine ----------------------------------------------

def test_lifecycle_happy_path():
    s = Session("s", factory=_fifo_factory)
    assert s.state is SessionState.ADMITTED
    s.open()
    assert s.state is SessionState.RUNNING
    cp = s.checkpoint()
    assert s.state is SessionState.CHECKPOINTED
    assert s.checkpoints == [cp]
    s.reopen()
    assert s.state is SessionState.RUNNING
    assert s.restarts == 1
    s.close()
    assert s.state is SessionState.CLOSED


def test_illegal_transitions_raise_typed_error():
    s = Session("s", factory=_fifo_factory)
    with pytest.raises(SessionStateError) as ei:
        s.checkpoint()  # ADMITTED cannot drain
    assert ei.value.session == "s"
    assert ei.value.state is SessionState.ADMITTED
    s.open()
    with pytest.raises(SessionStateError):
        s.reopen()  # RUNNING cannot restore (no checkpoint taken)
    s.close()
    with pytest.raises(SessionStateError):
        s.open()  # CLOSED is terminal
    s.close()  # ...but close itself is idempotent (teardown calls race)
    assert s.state is SessionState.CLOSED


def test_quarantine_is_terminal_except_close():
    s = Session("s", factory=_fifo_factory).open()
    cause = RuntimeError("wedged")
    s.quarantine(cause)
    assert s.state is SessionState.QUARANTINED
    assert s.quarantine_cause is cause
    with pytest.raises(SessionStateError):
        s.open()
    s.close()  # always legal
    assert s.state is SessionState.CLOSED


def test_failed_checkpoint_returns_to_running():
    """A non-quiescent engine fails the snapshot with CheckpointError and
    the lifecycle lands back in RUNNING — never wedged in DRAINING."""
    from repro.util.errors import CheckpointError

    s = Session("s", factory=_fifo_factory).open()
    # a recv with nothing buffered stays pending -> not quiescent
    op = s.connector.engine.post_recv("x2")
    assert not op.done
    with pytest.raises(CheckpointError):
        s.checkpoint()
    assert s.state is SessionState.RUNNING
    s.close()


# -- the farm shape ----------------------------------------------------------

def _drain_to(session, n, timeout=5.0):
    deadline = time.monotonic() + timeout
    while len(session.delivered) < n and time.monotonic() < deadline:
        time.sleep(0.01)
    return len(session.delivered)


def test_farm_delivers_and_accounts():
    s = FarmSession("farm", workers=2, policy=POLICY).open()
    try:
        for j in range(20):
            assert s.submit(f"v{j}", timeout=5.0) == "ok"
        assert _drain_to(s, 20) == 20
    finally:
        s.close()
    assert sorted(s.delivered) == sorted(f"v{j}" for j in range(20))
    assert conservation_violations(s.registry) == []


@pytest.mark.fault_stress
def test_farm_on_workers_backend_delivers_and_records_meta():
    """Opt-in multiprocess engine backend: the farm's router regions run
    in worker processes, and the backend choice survives into the durable
    metadata so ``recover_sessions`` rebuilds like-for-like."""
    s = FarmSession("pfarm", workers=2, policy=POLICY,
                    concurrency="workers", engine_workers=2,
                    default_timeout=15.0).open()
    try:
        for j in range(10):
            assert s.submit(f"v{j}", timeout=15.0) == "ok"
        assert _drain_to(s, 10, timeout=30.0) == 10
        meta = s._durable_meta()
        assert meta["concurrency"] == "workers"
        assert meta["engine_workers"] == 2
    finally:
        s.close()
    assert sorted(s.delivered) == sorted(f"v{j}" for j in range(10))


def test_rolling_restart_is_exactly_once_under_load():
    s = FarmSession("roll", workers=2, policy=POLICY,
                    service_time=0.002).open()
    stop = threading.Event()
    admitted: list = []

    def pump():
        j = 0
        while not stop.is_set():
            if s.submit(f"p{j}", timeout=5.0) == "ok":
                admitted.append(f"p{j}")
            j += 1

    t = threading.Thread(target=pump)
    t.start()
    try:
        time.sleep(0.1)
        cp = s.rolling_restart()
        assert cp is s.checkpoints[-1]
        assert s.restarts == 1
        assert s.state is SessionState.RUNNING
        time.sleep(0.1)
    finally:
        stop.set()
        t.join(10.0)
        s.close()
    landed = list(s.delivered) + [d.value for d in s.dead_letters()]
    assert len(landed) == len(set(landed)), "a value was duplicated"
    assert set(admitted) <= set(landed), "an admitted value vanished"
    assert conservation_violations(s.registry) == []


def test_rolling_restart_shrinks_via_leave():
    s = FarmSession("shrink", workers=3, policy=POLICY).open()
    try:
        for j in range(12):
            assert s.submit(f"a{j}", timeout=5.0) == "ok"
        s.rolling_restart(new_workers=2)
        assert s.workers == 2
        # the rebuilt farm serves at the reduced arity
        for j in range(12):
            assert s.submit(f"b{j}", timeout=5.0) == "ok"
        _drain_to(s, 24)
    finally:
        s.close()
    landed = (list(s.delivered) + [d.value for d in s.dead_letters()]
              + list(s.dropped))
    assert len(landed) == len(set(landed))
    expected = {f"a{j}" for j in range(12)} | {f"b{j}" for j in range(12)}
    assert expected <= set(landed)
    assert conservation_violations(s.registry) == []


def test_rolling_restart_rejects_growth():
    s = FarmSession("grow", workers=2, policy=POLICY).open()
    try:
        with pytest.raises(RuntimeProtocolError):
            s.rolling_restart(new_workers=3)
        assert s.state is SessionState.RUNNING  # aborted cleanly
    finally:
        s.close()


def test_submit_refused_after_close_and_quarantine():
    s = FarmSession("done", workers=1, policy=POLICY).open()
    s.close()
    with pytest.raises(SessionStateError):
        s.submit("late", timeout=0.1)

    q = FarmSession("sick", workers=1, policy=POLICY).open()
    q.quarantine(RuntimeError("wedged"))
    with pytest.raises(SessionStateError):
        q.submit("late", timeout=0.1)
    q.close()


def test_parked_checkpoint_is_quiescent():
    """rolling_restart's parking protocol converges to a checkpointable
    engine even while workers were actively polling."""
    s = FarmSession("park", workers=2, policy=POLICY,
                    service_time=0.001).open()
    try:
        for j in range(8):
            s.submit(f"v{j}", timeout=5.0)
        for _ in range(3):  # repeated restarts back to back
            s.rolling_restart()
        assert s.restarts == 3
    finally:
        s.close()
    assert conservation_violations(s.registry) == []
