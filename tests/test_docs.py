"""The documentation gate: links resolve, examples run.

Delegates to ``tools/check_docs.py`` (the same entry point CI's docs job
uses) so local runs and CI cannot disagree about what "docs pass" means.
The catalogue-completeness half of the docs contract lives next to the
metrics tests (``tests/runtime/test_observe.py::test_every_metric_documented``).
"""

import os
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.mark.fault_stress  # executes the observed-farm walkthrough block
def test_docs_links_and_examples():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, (
        f"docs check failed:\n{proc.stdout}\n{proc.stderr}"
    )
