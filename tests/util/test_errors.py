"""Error taxonomy: hierarchy and diagnostics payloads."""

import pytest

from repro.util import errors as E


def test_hierarchy():
    assert issubclass(E.ParseError, E.ReproError)
    assert issubclass(E.CompilationBudgetExceeded, E.CompilationError)
    assert issubclass(E.DeadlockError, E.RuntimeProtocolError)
    assert issubclass(E.PortClosedError, E.RuntimeProtocolError)
    assert issubclass(E.RuntimeProtocolError, E.ReproError)


def test_parse_error_position():
    err = E.ParseError("bad token", line=3, column=7)
    assert err.line == 3 and err.column == 7
    assert "3:7" in str(err)


def test_parse_error_without_position():
    assert str(E.ParseError("oops")) == "oops"


def test_budget_exceeded_payload():
    err = E.CompilationBudgetExceeded(budget=100, reached=101)
    assert err.budget == 100
    assert err.reached == 101
    assert "101" in str(err)


def test_catch_all_library_errors():
    with pytest.raises(E.ReproError):
        raise E.DeadlockError("stuck")
