"""Fresh-name generation: determinism and uniqueness."""

from repro.util.naming import FreshNames, qualify


def test_fresh_unique_per_base():
    f = FreshNames()
    names = [f.fresh("x") for _ in range(5)]
    assert len(set(names)) == 5
    assert names[0] == "x$0"


def test_fresh_independent_bases():
    f = FreshNames()
    assert f.fresh("a") == "a$0"
    assert f.fresh("b") == "b$0"
    assert f.fresh("a") == "a$1"


def test_fresh_deterministic_across_instances():
    a, b = FreshNames(), FreshNames()
    seq = ["x", "y", "x", "z"]
    assert [a.fresh(s) for s in seq] == [b.fresh(s) for s in seq]


def test_reset():
    f = FreshNames()
    f.fresh("x")
    f.reset()
    assert f.fresh("x") == "x$0"


def test_qualify():
    assert qualify("scope", "v") == "scope$v"
    assert qualify("", "v") == "v"
