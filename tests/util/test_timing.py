"""Stopwatch and throughput meter."""

import time

import pytest

from repro.util.timing import Stopwatch, ThroughputMeter


def test_stopwatch_measures_elapsed():
    sw = Stopwatch().start()
    time.sleep(0.02)
    elapsed = sw.stop()
    assert elapsed >= 0.015


def test_stopwatch_accumulates_laps():
    sw = Stopwatch()
    for _ in range(2):
        sw.start()
        time.sleep(0.01)
        sw.stop()
    assert sw.elapsed >= 0.015


def test_stopwatch_context_manager():
    with Stopwatch() as sw:
        time.sleep(0.01)
    assert sw.elapsed >= 0.005


def test_stopwatch_stop_without_start():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_throughput_meter_counts():
    m = ThroughputMeter(window_s=10.0)
    for _ in range(100):
        m.tick()
    assert m.count == 100
    assert not m.deadline_reached()
    assert m.rate > 0


def test_throughput_meter_deadline():
    m = ThroughputMeter(window_s=0.01, check_every=1)
    time.sleep(0.03)
    m.tick()
    assert m.deadline_reached()
    # stays expired
    assert m.deadline_reached()
