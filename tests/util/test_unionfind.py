"""Union-find: basic operations and partition invariants."""

from hypothesis import given, strategies as st

from repro.util.unionfind import UnionFind


def test_singletons():
    uf = UnionFind(["a", "b"])
    assert uf.find("a") == "a"
    assert not uf.same("a", "b")


def test_union_and_find():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.same("a", "c")
    assert not uf.same("a", "d")  # auto-added singleton


def test_find_adds_element():
    uf = UnionFind()
    assert uf.find(42) == 42
    assert 42 in uf


def test_groups_partition():
    uf = UnionFind(range(6))
    uf.union(0, 1)
    uf.union(2, 3)
    uf.union(3, 4)
    groups = sorted(sorted(g) for g in uf.groups())
    assert groups == [[0, 1], [2, 3, 4], [5]]


def test_union_idempotent():
    uf = UnionFind()
    uf.union("x", "y")
    uf.union("x", "y")
    uf.union("y", "x")
    assert sum(1 for _ in uf.groups()) == 1


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
def test_transitive_closure_matches_reference(pairs):
    """Union-find equivalence == reachability in the undirected pair graph."""
    uf = UnionFind(range(21))
    adj = {i: {i} for i in range(21)}
    for a, b in pairs:
        uf.union(a, b)
    # reference: floyd-warshall-ish closure over sets
    changed = True
    for a, b in pairs:
        adj[a].add(b)
        adj[b].add(a)
    while changed:
        changed = False
        for i in range(21):
            for j in list(adj[i]):
                if not adj[j] <= adj[i]:
                    adj[i] |= adj[j]
                    changed = True
    for i in range(21):
        for j in range(21):
            assert uf.same(i, j) == (j in adj[i])
