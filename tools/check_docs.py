#!/usr/bin/env python
"""Documentation checker: links, anchors, and executable examples.

Two passes over the living documentation (README.md, DESIGN.md,
EXPERIMENTS.md, docs/*.md):

1. **Links and anchors** — every relative markdown link must point at an
   existing file, and every ``#fragment`` (in-file or cross-file) must
   match a heading's GitHub-style slug.  External ``http(s)`` links are
   not fetched (CI has no network guarantee); their syntax is all that is
   checked.
2. **Executable examples** — every fenced ```python block in
   docs/OBSERVABILITY.md and docs/SERVICE.md, plus the block(s) in
   README.md's "Observability quickstart" section, is run in a subprocess with
   ``PYTHONPATH=src``; the fenced ```bash blocks in docs/INTERNALS.md
   §10's "Running it" subsection (the ``python -m repro fuzz`` examples)
   run through ``bash -e`` the same way.  Docs that stop working stop
   merging.

Exit status 0 when everything passes; each failure is printed with
``file:line``.  Run from the repository root (CI) or anywhere inside it::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parents[1]

#: The living documentation set (generated artifacts like PAPERS.md /
#: SNIPPETS.md are excluded — they quote external material verbatim).
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

#: file (relative to ROOT) -> heading restricting which fenced python
#: blocks run; None runs every block in the file.
EXECUTE = {
    "docs/COMPILER.md": None,
    "docs/DURABILITY.md": None,
    "docs/OBSERVABILITY.md": None,
    "docs/PARALLEL.md": None,
    "docs/SERVICE.md": None,
    "README.md": "Observability quickstart",
}

#: Same, for fenced ```bash blocks (run via ``bash -e`` in a temporary
#: directory — command examples must be self-contained and CWD-free).
EXECUTE_SHELL = {
    "docs/INTERNALS.md": "Running it",  # §10 Differential fuzzing
}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*$", re.MULTILINE)
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def doc_paths() -> list[pathlib.Path]:
    paths = [ROOT / name for name in DOC_FILES]
    paths += sorted((ROOT / "docs").glob("*.md"))
    return [p for p in paths if p.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep content
    text = text.lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s", "-", text.strip())


def slugs_of(path: pathlib.Path, cache: dict) -> set[str]:
    if path not in cache:
        cache[path] = {
            github_slug(m.group(1))
            for m in HEADING_RE.finditer(path.read_text())
        }
    return cache[path]


def check_links() -> list[str]:
    errors: list[str] = []
    slug_cache: dict = {}
    for path in doc_paths():
        text = path.read_text()
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            line = text.count("\n", 0, m.start()) + 1
            where = f"{path.relative_to(ROOT)}:{line}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            dest = path if not base else (path.parent / base).resolve()
            if not dest.exists():
                errors.append(f"{where}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in slugs_of(dest, slug_cache):
                    errors.append(
                        f"{where}: anchor #{fragment} not found in "
                        f"{dest.relative_to(ROOT)}"
                    )
    return errors


def fenced_blocks(path: pathlib.Path, section: str | None,
                  language: str = "python") -> list[tuple[int, str]]:
    """(start line, code) for each fenced block of ``language``, optionally
    only those under the given heading (until the next heading of any
    level)."""
    blocks: list[tuple[int, str]] = []
    in_section = section is None
    lang = None
    buf: list[str] = []
    start = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if lang is None and line.startswith("#"):
            hm = HEADING_RE.match(line)
            if hm and section is not None:
                in_section = section.lower() in hm.group(1).lower()
        fm = FENCE_RE.match(line)
        if lang is None and fm:
            lang, buf, start = fm.group(1), [], lineno
        elif lang is not None and line.strip() == "```":
            if lang == language and in_section:
                blocks.append((start, "\n".join(buf) + "\n"))
            lang = None
        elif lang is not None:
            buf.append(line)
    return blocks


def run_blocks() -> list[str]:
    errors: list[str] = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # bash blocks say `python`: make sure it resolves to this interpreter
    env["PATH"] = os.path.dirname(sys.executable) + os.pathsep + env["PATH"]
    plans = [
        (rel, section, "python", [sys.executable, "-c"])
        for rel, section in EXECUTE.items()
    ] + [
        (rel, section, "bash", ["bash", "-e", "-c"])
        for rel, section in EXECUTE_SHELL.items()
    ]
    for rel, section, language, runner in plans:
        path = ROOT / rel
        if not path.exists():
            errors.append(f"{rel}: file listed in EXECUTE is missing")
            continue
        blocks = fenced_blocks(path, section, language)
        if not blocks:
            errors.append(
                f"{rel}: no fenced {language} blocks found to execute"
            )
        for lineno, code in blocks:
            with tempfile.TemporaryDirectory() as tmp:
                proc = subprocess.run(
                    runner + [code],
                    capture_output=True, text=True, timeout=300,
                    env=env, cwd=tmp,  # blocks must not depend on the CWD
                )
            if proc.returncode != 0:
                tail = proc.stderr.strip().splitlines()[-8:]
                errors.append(
                    f"{rel}:{lineno}: example block failed "
                    f"(exit {proc.returncode})\n    " + "\n    ".join(tail)
                )
            else:
                print(f"ok: {rel}:{lineno} example block ran clean")
    return errors


def main() -> int:
    errors = check_links()
    print(f"links: {len(doc_paths())} files checked, "
          f"{len(errors)} broken")
    errors += run_blocks()
    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
