#!/usr/bin/env python
"""Dump the compiled step tier's emitted source for a library connector.

Builds the named connector, connects it (AOT composition so every state is
compiled up front, not just the states a run happens to visit), and prints
each generated step function with its region/state/label header — the
exact code the engine executes on the hot path (docs/COMPILER.md §4).

CI runs this for a couple of representative connectors and uploads the
output as an artifact whenever the compile-path tests fail, so a broken
build leaves the generated source behind for inspection.

Usage::

    python tools/dump_compiled_steps.py                 # EarlyAsyncMerger 2
    python tools/dump_compiled_steps.py Sequencer 3
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    name = argv[0] if argv else "EarlyAsyncMerger"
    n = int(argv[1]) if len(argv) > 1 else 2

    from repro.compiler.steps import region_sources
    from repro.connectors import library
    from repro.runtime.ports import mkports

    conn = library.connector(name, n, composition="aot", compiled="auto")
    conn.connect(*mkports(len(conn.tail_vertices), len(conn.head_vertices)))
    try:
        rows = region_sources(conn.engine)
        stats = conn.stats()
        print(f"# {name}/{n}: {stats['compiled_regions']} compiled "
              f"region(s), {stats['compiled_states']} state(s), "
              f"{len(rows)} step function(s)")
        if not rows:
            print("# (no compiled steps — every region demoted; "
                  "see docs/COMPILER.md §3)")
            return 1
        for idx, state, label, source in rows:
            print(f"\n# --- region {idx}  state {state!r}  label {label}")
            print(source, end="")
    finally:
        conn.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
